//! The logical-plan IR: queries lowered from the AST with name resolution,
//! schema computation and validation done **once**, at prepare time.
//!
//! [`lower_query`] turns a parsed [`Query`] into a [`Plan`] tree of
//! Scan / Filter / Project / Join / Aggregate / SetOp nodes. Every node
//! carries its resolved output [`Schema`]; predicates refer to columns by
//! position, aggregate specs and group-by columns by their resolved
//! internal names. Executing a plan (see [`crate::exec`]) therefore never
//! re-parses SQL or re-resolves identifiers — the architectural seam for
//! prepared-statement reuse, plan-level optimization and caching.
//!
//! Name handling matches the paper-facing SQL surface: scanned tables are
//! renamed wholesale to `alias.column` (one schema-level rename, not a
//! per-column loop), unqualified references resolve by unique suffix match,
//! and aggregate outputs take their `AS` alias (or a `FUNC(col)` display
//! name) right at the [`Plan::Aggregate`] node so `HAVING` can see them.

use crate::annot::ParseAnnotation;
use crate::ast::{
    AggArg, AggFunc, CmpOp, ColRef, Condition, Lit, Operand, Query, SelectItem, SelectStmt, SetOp,
    TableRef, TableSource,
};
use crate::database::Database;
use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::annotation::AggAnnotation;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::schema::Schema;

fn unsup(msg: impl Into<String>) -> RelError {
    RelError::Unsupported(msg.into())
}

/// The internal column name of the constant-1 column used by COUNT/AVG.
pub(crate) const ONE_COL: &str = "__one";

/// A resolved operand of a [`Predicate`]: a column position, a constant, or
/// a `$n` parameter slot.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanOperand {
    /// The value at a column position of the input relation.
    Col(usize),
    /// A constant.
    Lit(Const),
    /// The `$n` placeholder (0-based slot; surface syntax is 1-based).
    Param(usize),
}

/// A fully resolved comparison predicate of a [`Plan::Filter`] node.
#[derive(Clone, PartialEq, Debug)]
pub struct Predicate {
    /// Left operand.
    pub left: PlanOperand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: PlanOperand,
}

/// One aggregate computation of a [`Plan::Aggregate`] node.
#[derive(Clone, PartialEq, Debug)]
pub struct PlanAgg {
    /// The aggregation monoid.
    pub kind: MonoidKind,
    /// The resolved input column name.
    pub attr: String,
    /// The output column name.
    pub out: String,
}

/// An `AVG` output computed from its SUM/COUNT parts after aggregation.
#[derive(Clone, PartialEq, Debug)]
pub struct AvgSpec {
    /// The internal SUM column.
    pub sum: String,
    /// The internal COUNT column.
    pub count: String,
    /// The output column name.
    pub out: String,
}

/// A logical query plan node. Every node knows its output [`Schema`].
#[derive(Clone, PartialEq, Debug)]
pub enum Plan {
    /// A base-table scan, columns renamed wholesale to `alias.column`.
    ///
    /// Cost: `O(1)` — the relation tuple store is `Arc`-shared
    /// (copy-on-write), so a scan is a cheap handle clone plus a
    /// schema-level rename, never a deep copy of the table.
    Scan {
        /// The catalog table name.
        table: String,
        /// The alias-prefixed output schema (resolved at prepare time).
        schema: Schema,
    },
    /// A derived table: a subquery in `FROM`, re-aliased wholesale.
    Derived {
        /// The subquery plan.
        input: Box<Plan>,
        /// The alias-prefixed output schema.
        schema: Schema,
    },
    /// Cartesian product of two inputs (comma-separated `FROM`).
    Product {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The concatenated schema.
        schema: Schema,
    },
    /// `JOIN … ON` with resolved equality column pairs.
    ///
    /// Cost: executed as a hash build (right) / probe (left) equi-join on
    /// the ground join keys — `O(|L| + |R|)` expected — plus a
    /// token-weighted nested loop over tuples whose join key holds a
    /// symbolic aggregate (`O(|ground|·|symbolic| + |symbolic|²)`).
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Resolved `(left column, right column)` equality pairs.
        on: Vec<(String, String)>,
        /// The concatenated schema.
        schema: Schema,
    },
    /// A tokened selection (`WHERE` / `HAVING` conjunct).
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// The resolved predicate.
        pred: Predicate,
    },
    /// Appends the constant-1 column for COUNT/AVG.
    AddUnitColumn {
        /// Input plan.
        input: Box<Plan>,
        /// The input schema extended with `ONE_COL`.
        schema: Schema,
    },
    /// Grouping/aggregation (`GROUP BY` + aggregate select items, or
    /// whole-relation aggregation when `group_by` is empty).
    ///
    /// Cost: hash-partitioned grouping on ground group keys (`O(n)`
    /// expected, plus tensor accumulation); symbolic group keys form
    /// token-weighted candidate groups against every hash bucket.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Resolved grouping column names.
        group_by: Vec<String>,
        /// Aggregate computations, in output order.
        aggs: Vec<PlanAgg>,
        /// AVG columns derived from SUM/COUNT pairs.
        avg: Vec<AvgSpec>,
        /// The output schema (`group_by ++ agg outputs ++ avg outputs`).
        schema: Schema,
    },
    /// The final projection: picks columns by position and installs the
    /// display-name schema in one schema-level rename.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Input column positions, in output order.
        columns: Vec<usize>,
        /// The display schema.
        schema: Schema,
    },
    /// `UNION` / `EXCEPT`. The right side is aligned to the left schema by
    /// position with a single schema-level rename (SQL set-op semantics).
    ///
    /// Cost: ground tuples merge additively in `O(n log n)`; only tuples
    /// carrying symbolic aggregates pay the §4.3 token cross terms.
    SetOp {
        /// The operation.
        op: SetOp,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The output schema (the left input's schema).
        schema: Schema,
    },
}

impl Plan {
    /// The output schema of this node.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Scan { schema, .. }
            | Plan::Derived { schema, .. }
            | Plan::Product { schema, .. }
            | Plan::Join { schema, .. }
            | Plan::AddUnitColumn { schema, .. }
            | Plan::Aggregate { schema, .. }
            | Plan::Project { schema, .. }
            | Plan::SetOp { schema, .. } => schema,
            Plan::Filter { input, .. } => input.schema(),
        }
    }

    /// The number of nodes in the plan (for tests and inspection).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Derived { input, .. }
            | Plan::Filter { input, .. }
            | Plan::AddUnitColumn { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. } => input.node_count(),
            Plan::Product { left, right, .. }
            | Plan::Join { left, right, .. }
            | Plan::SetOp { left, right, .. } => left.node_count() + right.node_count(),
        }
    }

    /// The base-table names this plan scans, deduplicated. The plan
    /// cache keys its per-table invalidation and version dependencies on
    /// this set; the optimizer restricts its catalog snapshot to it.
    pub fn scanned_tables(&self) -> std::collections::BTreeSet<String> {
        fn walk(plan: &Plan, out: &mut std::collections::BTreeSet<String>) {
            match plan {
                Plan::Scan { table, .. } => {
                    out.insert(table.clone());
                }
                Plan::Derived { input, .. }
                | Plan::Filter { input, .. }
                | Plan::AddUnitColumn { input, .. }
                | Plan::Aggregate { input, .. }
                | Plan::Project { input, .. } => walk(input, out),
                Plan::Product { left, right, .. }
                | Plan::Join { left, right, .. }
                | Plan::SetOp { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut names = std::collections::BTreeSet::new();
        walk(self, &mut names);
        names
    }

    /// The number of nodes that shard their ground partition across worker
    /// threads at execution (join, grouped aggregation, projection,
    /// `UNION`) — `EXPLAIN`-style introspection for sizing
    /// `AGGPROV_THREADS` against a prepared plan. `EXCEPT` runs through
    /// the difference operator, *ungrouped* aggregation is a single linear
    /// fold (`agg_all`), and products/filters stay on linear single-pass
    /// paths, so none of those count.
    ///
    /// The count is a static *upper bound*: some fast paths are
    /// data-dependent and only decided at execution time (an identity
    /// projection over a symbol-free relation is a pure schema rename; a
    /// projection of the same plan over symbolic values runs the sharded
    /// §4.3 merge), so a counted node may still execute serially on
    /// friendly data.
    pub fn partition_parallel_nodes(&self) -> usize {
        let own = match self {
            Plan::Join { .. } | Plan::Project { .. } => 1,
            Plan::Aggregate { group_by, .. } => usize::from(!group_by.is_empty()),
            Plan::SetOp {
                op: SetOp::Union, ..
            } => 1,
            _ => 0,
        };
        own + match self {
            Plan::Scan { .. } => 0,
            Plan::Derived { input, .. }
            | Plan::Filter { input, .. }
            | Plan::AddUnitColumn { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. } => input.partition_parallel_nodes(),
            Plan::Product { left, right, .. }
            | Plan::Join { left, right, .. }
            | Plan::SetOp { left, right, .. } => {
                left.partition_parallel_nodes() + right.partition_parallel_nodes()
            }
        }
    }
}

/// A lowered query: the plan plus the number of `$n` parameter slots it
/// expects (the highest placeholder number seen).
#[derive(Clone, PartialEq, Debug)]
pub struct LoweredQuery {
    /// The root plan node.
    pub plan: Plan,
    /// How many parameters `execute_with` must supply.
    pub param_count: usize,
}

/// Lowers a parsed query to a logical plan against the database's current
/// catalog: resolves every table and column name, computes every node's
/// schema, and validates grouping/aggregation — all exactly once.
pub fn lower_query<A>(db: &Database<A>, q: &Query) -> Result<LoweredQuery>
where
    A: AggAnnotation + ParseAnnotation,
{
    let mut lowerer = Lowerer {
        db,
        params_seen: std::collections::BTreeSet::new(),
    };
    let plan = lowerer.query(q)?;
    let param_count = lowerer.params_seen.last().copied().unwrap_or(0);
    // Reject numbering gaps eagerly: a caller who wrote `$2` but never
    // `$1` has almost certainly miscounted, and accepting the gap would
    // silently swallow one bound value.
    for n in 1..=param_count {
        if !lowerer.params_seen.contains(&n) {
            return Err(unsup(format!(
                "query references ${param_count} but never ${n}; parameters must be \
                 numbered contiguously from $1"
            )));
        }
    }
    Ok(LoweredQuery { plan, param_count })
}

struct Lowerer<'db, A: AggAnnotation + ParseAnnotation> {
    db: &'db Database<A>,
    params_seen: std::collections::BTreeSet<usize>,
}

/// Resolves a column reference against a schema: exact match first, then a
/// unique `.column` suffix match for unqualified references.
pub(crate) fn resolve_col(schema: &Schema, col: &ColRef) -> Result<String> {
    let want = col.display();
    if schema.contains(&want) {
        return Ok(want);
    }
    if col.table.is_none() {
        let suffix = format!(".{}", col.column);
        let matches: Vec<&str> = schema
            .attrs()
            .iter()
            .map(|a| a.name())
            .filter(|n| n.ends_with(suffix.as_str()))
            .collect();
        match matches.len() {
            1 => return Ok(matches[0].to_string()),
            0 => {}
            _ => {
                return Err(unsup(format!(
                    "ambiguous column `{}` (candidates: {})",
                    col.column,
                    matches.join(", ")
                )))
            }
        }
    }
    Err(RelError::UnknownAttr(want))
}

/// For `SELECT *`: strips the alias prefix when the bare column name is
/// unambiguous.
fn bare_display(schema: &Schema, internal: &str) -> String {
    let bare = internal.rsplit('.').next().unwrap_or(internal);
    let suffix = format!(".{bare}");
    let count = schema
        .attrs()
        .iter()
        .filter(|a| a.name() == bare || a.name().ends_with(suffix.as_str()))
        .count();
    if count == 1 {
        bare.to_string()
    } else {
        internal.to_string()
    }
}

fn lit_to_const(lit: &Lit) -> Const {
    match lit {
        Lit::Num(n) => Const::Num(*n),
        Lit::Str(s) => Const::str(s),
        Lit::Bool(b) => Const::Bool(*b),
    }
}

/// The planned output shape of a `SELECT` list.
struct Planned {
    /// Internal output column per select item, in order.
    internal: Vec<String>,
    /// Display name per select item, in order.
    display: Vec<String>,
}

impl<A: AggAnnotation + ParseAnnotation> Lowerer<'_, A> {
    fn query(&mut self, q: &Query) -> Result<Plan> {
        match q {
            Query::Select(s) => self.select(s),
            Query::SetOp { op, left, right } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                if l.schema().arity() != r.schema().arity() {
                    return Err(RelError::SchemaMismatch {
                        left: l.schema().to_string(),
                        right: r.schema().to_string(),
                        op: "set operation (arities differ)",
                    });
                }
                let schema = l.schema().clone();
                Ok(Plan::SetOp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                    schema,
                })
            }
        }
    }

    /// Lowers one `FROM` table reference: a scan or a derived subquery,
    /// with all columns renamed to `alias.column` in one step.
    fn table_ref(&mut self, tref: &TableRef) -> Result<Plan> {
        let alias = tref.effective_alias();
        if alias.contains('.') {
            return Err(unsup(format!("alias `{alias}` may not contain `.`")));
        }
        let prefixed = |base: &Schema| -> Result<Schema> {
            Schema::new(
                base.attrs()
                    .iter()
                    .map(|a| format!("{alias}.{}", a.name()))
                    .collect::<Vec<_>>()
                    .iter()
                    .map(|s| s.as_str()),
            )
        };
        match &tref.source {
            TableSource::Named(name) => Ok(Plan::Scan {
                table: name.clone(),
                schema: prefixed(self.db.table(name)?.schema())?,
            }),
            TableSource::Subquery(q) => {
                let sub = self.query(q)?;
                let schema = prefixed(sub.schema())?;
                Ok(Plan::Derived {
                    input: Box::new(sub),
                    schema,
                })
            }
        }
    }

    fn operand(&mut self, schema: &Schema, operand: &Operand) -> Result<PlanOperand> {
        Ok(match operand {
            Operand::Col(c) => PlanOperand::Col(schema.index_of(&resolve_col(schema, c)?)?),
            Operand::Lit(l) => PlanOperand::Lit(lit_to_const(l)),
            Operand::Param(n) => {
                self.params_seen.insert(*n as usize);
                PlanOperand::Param(*n as usize - 1)
            }
        })
    }

    fn filter(&mut self, input: Plan, cond: &Condition) -> Result<Plan> {
        let pred = Predicate {
            left: self.operand(input.schema(), &cond.left)?,
            op: cond.op,
            right: self.operand(input.schema(), &cond.right)?,
        };
        Ok(Plan::Filter {
            input: Box::new(input),
            pred,
        })
    }

    fn select(&mut self, s: &SelectStmt) -> Result<Plan> {
        if s.from.is_empty() {
            return Err(unsup("FROM clause is required"));
        }
        // FROM and JOIN.
        let mut plan = self.table_ref(&s.from[0])?;
        for tref in &s.from[1..] {
            let right = self.table_ref(tref)?;
            let schema = plan.schema().concat(right.schema())?;
            plan = Plan::Product {
                left: Box::new(plan),
                right: Box::new(right),
                schema,
            };
        }
        for join in &s.joins {
            let right = self.table_ref(&join.table)?;
            let mut on: Vec<(String, String)> = Vec::new();
            for (l, r) in &join.on {
                // Orient each pair: one side in the accumulated relation,
                // the other in the joined table.
                let (lc, rc) = match (
                    resolve_col(plan.schema(), l),
                    resolve_col(right.schema(), r),
                ) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => {
                        let a = resolve_col(plan.schema(), r)?;
                        let b = resolve_col(right.schema(), l)?;
                        (a, b)
                    }
                };
                on.push((lc, rc));
            }
            let schema = plan.schema().concat(right.schema())?;
            plan = Plan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                on,
                schema,
            };
        }
        // WHERE.
        for cond in &s.where_ {
            plan = self.filter(plan, cond)?;
        }

        let has_agg = s.items.iter().any(|i| matches!(i, SelectItem::Agg(..)));

        let planned = if has_agg || !s.group_by.is_empty() {
            let (aggregated, planned) = self.aggregate(plan, s)?;
            plan = aggregated;
            planned
        } else {
            if !s.having.is_empty() {
                return Err(unsup("HAVING requires aggregation"));
            }
            self.plain_items(plan.schema(), s)?
        };

        // HAVING (aggregate outputs are already named).
        for cond in &s.having {
            plan = self.filter(plan, cond)?;
        }

        // Final projection straight to display names: positions resolved
        // here, the display schema installed in one schema-level rename.
        let columns: Vec<usize> = planned
            .internal
            .iter()
            .map(|n| plan.schema().index_of(n))
            .collect::<Result<_>>()?;
        let schema = Schema::new(planned.display.iter().map(|s| s.as_str()))?;
        Ok(Plan::Project {
            input: Box::new(plan),
            columns,
            schema,
        })
    }

    /// Plans SELECT items when no aggregation is involved.
    fn plain_items(&mut self, schema: &Schema, s: &SelectStmt) -> Result<Planned> {
        let mut internal = Vec::new();
        let mut display = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Star => {
                    for a in schema.attrs() {
                        internal.push(a.name().to_string());
                        display.push(bare_display(schema, a.name()));
                    }
                }
                SelectItem::Col(c, alias) => {
                    let name = resolve_col(schema, c)?;
                    internal.push(name);
                    display.push(alias.clone().unwrap_or_else(|| c.column.clone()));
                }
                SelectItem::Agg(..) => unreachable!("plain path has no aggregates"),
            }
        }
        Ok(Planned { internal, display })
    }

    /// Lowers grouping/aggregation and names the outputs.
    fn aggregate(&mut self, input: Plan, s: &SelectStmt) -> Result<(Plan, Planned)> {
        // Resolve grouping columns.
        let group_by: Vec<String> = s
            .group_by
            .iter()
            .map(|c| resolve_col(input.schema(), c))
            .collect::<Result<_>>()?;

        let needs_one = s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg(AggFunc::Count | AggFunc::Avg, _, _)));
        let input = if needs_one {
            let mut names: Vec<String> = input
                .schema()
                .attrs()
                .iter()
                .map(|a| a.name().to_string())
                .collect();
            names.push(ONE_COL.to_string());
            let schema = Schema::new(names.iter().map(|s| s.as_str()))?;
            Plan::AddUnitColumn {
                input: Box::new(input),
                schema,
            }
        } else {
            input
        };

        let mut aggs: Vec<PlanAgg> = Vec::new();
        let mut avg: Vec<AvgSpec> = Vec::new();
        let mut internal = Vec::new();
        let mut display = Vec::new();

        for (i, item) in s.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    return Err(unsup("`*` cannot be mixed with aggregation; list columns"))
                }
                SelectItem::Col(c, alias) => {
                    let name = resolve_col(input.schema(), c)?;
                    if !group_by.contains(&name) {
                        return Err(unsup(format!(
                            "column `{}` must appear in GROUP BY or inside an aggregate",
                            c.display()
                        )));
                    }
                    internal.push(name);
                    display.push(alias.clone().unwrap_or_else(|| c.column.clone()));
                }
                SelectItem::Agg(func, arg, alias) => {
                    let (attr, arg_name) = match arg {
                        AggArg::Star => {
                            if !matches!(func, AggFunc::Count) {
                                return Err(unsup(format!("{}(*) is not supported", func.name())));
                            }
                            (ONE_COL.to_string(), "*".to_string())
                        }
                        AggArg::Col(c) => (resolve_col(input.schema(), c)?, c.display()),
                    };
                    let out = alias
                        .clone()
                        .unwrap_or_else(|| format!("{}({})", func.name(), arg_name));
                    match func {
                        AggFunc::Count => aggs.push(PlanAgg {
                            kind: MonoidKind::Sum,
                            attr: ONE_COL.to_string(),
                            out: out.clone(),
                        }),
                        AggFunc::Avg => {
                            let sum = format!("__avg_sum_{i}");
                            let count = format!("__avg_cnt_{i}");
                            aggs.push(PlanAgg {
                                kind: MonoidKind::Sum,
                                attr,
                                out: sum.clone(),
                            });
                            aggs.push(PlanAgg {
                                kind: MonoidKind::Sum,
                                attr: ONE_COL.to_string(),
                                out: count.clone(),
                            });
                            avg.push(AvgSpec {
                                sum,
                                count,
                                out: out.clone(),
                            });
                        }
                        _ => aggs.push(PlanAgg {
                            kind: agg_kind(*func),
                            attr,
                            out: out.clone(),
                        }),
                    }
                    internal.push(out.clone());
                    display.push(out);
                }
            }
        }

        // The aggregate node's schema: group columns, then aggregate
        // outputs, then derived AVG outputs.
        let mut names: Vec<String> = group_by.clone();
        names.extend(aggs.iter().map(|a| a.out.clone()));
        names.extend(avg.iter().map(|a| a.out.clone()));
        let schema = Schema::new(names.iter().map(|s| s.as_str()))?;

        let plan = Plan::Aggregate {
            input: Box::new(input),
            group_by,
            aggs,
            avg,
            schema,
        };
        Ok((plan, Planned { internal, display }))
    }
}

fn agg_kind(func: AggFunc) -> MonoidKind {
    match func {
        AggFunc::Sum | AggFunc::Count | AggFunc::Avg => MonoidKind::Sum,
        AggFunc::Min => MonoidKind::Min,
        AggFunc::Max => MonoidKind::Max,
        AggFunc::Prod => MonoidKind::Prod,
        AggFunc::BoolOr => MonoidKind::Or,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::ProvDb;

    fn db() -> ProvDb {
        let mut db = ProvDb::new();
        db.exec(
            "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
             CREATE TABLE heads (dept TEXT, head TEXT);",
        )
        .unwrap();
        db
    }

    fn lower(db: &ProvDb, sql: &str) -> LoweredQuery {
        lower_query(db, &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn scan_schemas_are_alias_prefixed() {
        let db = db();
        let lowered = lower(&db, "SELECT emp FROM r");
        let Plan::Project { input, schema, .. } = &lowered.plan else {
            panic!("expected a projection root, got {:?}", lowered.plan)
        };
        assert_eq!(schema.to_string(), "emp");
        assert_eq!(input.schema().to_string(), "r.emp, r.dept, r.sal");
    }

    #[test]
    fn group_by_plans_resolve_names_once() {
        let db = db();
        let lowered = lower(
            &db,
            "SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total = 25",
        );
        assert_eq!(lowered.param_count, 0);
        assert_eq!(lowered.plan.schema().to_string(), "dept, total");
        // Root is Project over Filter (HAVING) over Aggregate.
        let Plan::Project { input, .. } = &lowered.plan else {
            panic!()
        };
        let Plan::Filter { input, pred } = input.as_ref() else {
            panic!()
        };
        assert_eq!(pred.left, PlanOperand::Col(1), "HAVING sees the agg output");
        let Plan::Aggregate { group_by, aggs, .. } = input.as_ref() else {
            panic!()
        };
        assert_eq!(group_by, &["r.dept".to_string()]);
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].out, "total");
    }

    #[test]
    fn params_are_counted_and_indexed() {
        let db = db();
        let lowered = lower(&db, "SELECT emp FROM r WHERE sal >= $2 AND dept = $1");
        assert_eq!(lowered.param_count, 2);
    }

    #[test]
    fn unknown_names_fail_at_lowering_time() {
        let db = db();
        let q = parse_query("SELECT nope FROM r").unwrap();
        assert!(lower_query(&db, &q).is_err());
        let q = parse_query("SELECT emp FROM missing").unwrap();
        assert!(lower_query(&db, &q).is_err());
    }

    #[test]
    fn set_ops_take_the_left_schema() {
        let db = db();
        let lowered = lower(&db, "SELECT dept FROM r EXCEPT SELECT dept FROM heads");
        let Plan::SetOp { schema, .. } = &lowered.plan else {
            panic!()
        };
        assert_eq!(schema.to_string(), "dept");
    }
}
