//! The fluent query result: by-name column access, row iteration, and
//! chainable provenance interrogation.
//!
//! A [`ResultSet`] wraps the annotated relation a query produced. Where the
//! old API required free-function incantations —
//! `collapse(&map_hom_mk(&out, &|p| Valuation::ones().eval(p)))` — the
//! result set chains them:
//!
//! ```
//! use aggprov_engine::ProvDb;
//! use aggprov_algebra::hom::Valuation;
//! use aggprov_algebra::semiring::Nat;
//!
//! let mut db = ProvDb::new();
//! db.exec(
//!     "CREATE TABLE r (dept TEXT, sal NUM);
//!      INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
//!      INSERT INTO r VALUES ('d1', 10) PROVENANCE p2;",
//! )
//! .unwrap();
//!
//! let prepared = db.prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept").unwrap();
//! let result = prepared.execute().unwrap();
//!
//! // One symbolic result, many readings:
//! let after_deletion = result.delete_tokens(["p2"]);          // fire employee 2
//! let plain = result.valuate(&Valuation::<Nat>::ones()).collapse().unwrap();
//! assert_eq!(plain.rows().next().unwrap().get("total").unwrap().to_string(), "30");
//! assert_eq!(after_deletion.len(), 1);
//! ```

use aggprov_algebra::hom::Valuation;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{CommutativeSemiring, Security};
use aggprov_core::eval::{collapse, map_hom_mk};
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::Value;
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::Tuple;
use aggprov_krel::schema::Schema;
use std::fmt;

/// The result of executing a (prepared) query: an annotated relation with
/// fluent access and provenance-interrogation methods.
///
/// The annotation type `A` is the database's semiring, so which methods are
/// available follows the algebra: [`valuate`](ResultSet::valuate) and
/// [`delete_tokens`](ResultSet::delete_tokens) exist only on provenance
/// results (`Km<ℕ[X]>`), [`clearance`](ResultSet::clearance) only on
/// security results, [`collapse`](ResultSet::collapse) on any `Km<K>`.
///
/// Determinism guarantee: a `ResultSet` is a pure function of the plan,
/// the parameters and the database — never of `AGGPROV_THREADS`. The
/// partition-parallel operators merge their shards in a deterministic
/// order and keep the symbolic token path sequential, so rows, annotations
/// and [`rows`](ResultSet::rows) iteration order are bit-identical at
/// every thread count (property-tested against the literal §4.3 oracle).
#[derive(Clone, PartialEq, Debug)]
pub struct ResultSet<A: CommutativeSemiring> {
    rel: MKRel<A>,
}

impl<A: CommutativeSemiring> ResultSet<A> {
    /// Wraps an annotated relation.
    pub fn from_relation(rel: MKRel<A>) -> Self {
        ResultSet { rel }
    }

    /// The underlying annotated relation.
    pub fn relation(&self) -> &MKRel<A> {
        &self.rel
    }

    /// Unwraps into the underlying annotated relation.
    pub fn into_relation(self) -> MKRel<A> {
        self.rel
    }

    /// The result schema.
    pub fn schema(&self) -> &Schema {
        self.rel.schema()
    }

    /// The column names, in order.
    pub fn columns(&self) -> Vec<&str> {
        self.rel.schema().attrs().iter().map(|a| a.name()).collect()
    }

    /// The position of a column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.rel.schema().index_of(name)
    }

    /// The number of rows (the support size).
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// True iff the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Iterates over `(tuple, annotation)` pairs (the raw relation view).
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple<Value<A>>, &A)> {
        self.rel.iter()
    }

    /// Iterates over [`Row`]s with by-name column access.
    pub fn rows(&self) -> impl Iterator<Item = Row<'_, A>> {
        let schema = self.rel.schema();
        self.rel.iter().map(move |(tuple, annotation)| Row {
            schema,
            tuple,
            annotation,
        })
    }

    /// The annotation of a tuple (`0_K` outside the support).
    pub fn annotation(&self, t: &Tuple<Value<A>>) -> A {
        self.rel.annotation(t)
    }
}

/// One result row: the tuple plus its annotation, with columns addressable
/// by name or position.
#[derive(Clone, Copy, Debug)]
pub struct Row<'a, A: CommutativeSemiring> {
    schema: &'a Schema,
    tuple: &'a Tuple<Value<A>>,
    annotation: &'a A,
}

impl<'a, A: CommutativeSemiring> Row<'a, A> {
    /// The value of a named column.
    pub fn get(&self, column: &str) -> Result<&'a Value<A>> {
        Ok(self.tuple.get(self.schema.index_of(column)?))
    }

    /// The value at a position.
    pub fn at(&self, index: usize) -> &'a Value<A> {
        self.tuple.get(index)
    }

    /// The row's annotation.
    pub fn annotation(&self) -> &'a A {
        self.annotation
    }

    /// The underlying tuple.
    pub fn tuple(&self) -> &'a Tuple<Value<A>> {
        self.tuple
    }
}

impl<K: CommutativeSemiring> ResultSet<Km<K>> {
    /// Applies a base-semiring homomorphism under `Km` (the lifting
    /// `h^M : K^M → K'^M`), resolving newly-decidable tokens — the fluent
    /// form of [`map_hom_mk`].
    pub fn map_hom<K2: CommutativeSemiring>(&self, h: impl Fn(&K) -> K2) -> ResultSet<Km<K2>> {
        ResultSet {
            rel: map_hom_mk(&self.rel, &h),
        }
    }

    /// Collapses a result whose symbolic atoms have all resolved into its
    /// base-semiring form. Fails (with the offending annotation in the
    /// message) if symbolic atoms survive.
    pub fn collapse(&self) -> Result<ResultSet<K>>
    where
        K: CommutativeSemiring,
    {
        Ok(ResultSet {
            rel: collapse(&self.rel)?,
        })
    }
}

impl ResultSet<Km<NatPoly>> {
    /// Specializes the stored provenance under a token valuation — the
    /// workhorse for deletion propagation, bag multiplicities, trust and
    /// cost readings. This is where the paper's "evaluate once, interrogate
    /// many times" workflow lives: the query is **not** re-evaluated.
    ///
    /// Valuating is a provenance-database operation: a bag database
    /// (`Database<Nat>`) has no tokens to valuate, so this does not
    /// compile there —
    ///
    /// ```compile_fail
    /// use aggprov_engine::Database;
    /// use aggprov_algebra::hom::Valuation;
    /// use aggprov_algebra::semiring::Nat;
    ///
    /// let mut db: Database<Nat> = Database::new();
    /// db.exec("CREATE TABLE r (x NUM); INSERT INTO r VALUES (1)").unwrap();
    /// let out = db.prepare("SELECT x FROM r").unwrap().execute().unwrap();
    /// out.valuate(&Valuation::<Nat>::ones()); // error: no tokens to valuate
    /// ```
    pub fn valuate<K2: CommutativeSemiring>(&self, val: &Valuation<K2>) -> ResultSet<Km<K2>> {
        self.map_hom(|p| val.eval(p))
    }

    /// Deletion propagation: substitutes the given tokens by `0` and keeps
    /// every other token symbolic (`x ↦ x`), so further interrogation —
    /// more deletions, trust readings, a final [`valuate`](ResultSet::valuate) — can continue
    /// on the smaller result. `delete_tokens(ts).valuate(&v)` equals
    /// valuating with `v` extended by `ts ↦ 0` directly.
    pub fn delete_tokens<I, S>(&self, tokens: I) -> ResultSet<Km<NatPoly>>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let deleted: std::collections::BTreeSet<String> =
            tokens.into_iter().map(|t| t.as_ref().to_string()).collect();
        self.map_hom(|p| {
            p.eval(
                &mut |v| {
                    if deleted.contains(v.name()) {
                        NatPoly::zero()
                    } else {
                        NatPoly::token(v.name())
                    }
                },
                &mut |c| NatPoly::from_nat(c.0),
            )
        })
    }
}

impl ResultSet<Km<Security>> {
    /// The view of a principal holding `credentials`: annotations visible
    /// at that clearance become `Public` (present), the rest `Never`
    /// (absent), resolving the aggregates the principal may see
    /// (paper Example 3.5).
    pub fn clearance(&self, credentials: Security) -> ResultSet<Km<Security>> {
        self.map_hom(|s| {
            if s.visible_to(credentials) {
                Security::Public
            } else {
                Security::Never
            }
        })
    }
}

impl<A: CommutativeSemiring> From<MKRel<A>> for ResultSet<A> {
    fn from(rel: MKRel<A>) -> Self {
        ResultSet::from_relation(rel)
    }
}

impl<A: CommutativeSemiring> fmt::Display for ResultSet<A>
where
    Value<A>: fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.rel.fmt(f)
    }
}

/// Keeps `for row in &result`-free explicit iteration ergonomic without
/// committing to an IntoIterator representation.
impl<A: CommutativeSemiring> ResultSet<A> {
    /// The first row, if any (common for single-row aggregates).
    pub fn first(&self) -> Option<Row<'_, A>> {
        self.rows().next()
    }

    /// The single value of a one-row, one-column result — the fluent way
    /// to read `SELECT AGG(x) FROM …` outputs.
    pub fn scalar(&self) -> Result<&Value<A>> {
        if self.rel.len() != 1 || self.rel.schema().arity() != 1 {
            return Err(RelError::Unsupported(format!(
                "scalar() needs a 1×1 result, got {} row(s) × {} column(s)",
                self.rel.len(),
                self.rel.schema().arity()
            )));
        }
        Ok(self.rel.iter().next().expect("len checked").0.get(0))
    }
}
