//! Materialized views with incremental semiring-delta maintenance.
//!
//! [`Database::materialize`] evaluates a query once, retains the annotated
//! result (provenance polynomials intact), and registers the view in the
//! current epoch. Every subsequent mutation then propagates an annotation
//! **delta** through the stored plan instead of re-executing:
//!
//! - `INSERT` builds a one-row delta database (the scanned table replaced
//!   by just the new row, every other table at its current state) and runs
//!   the stored physical plan over it. Because every incremental plan
//!   scans each base table at most once, the plan is *linear* in that
//!   table's annotations — `P(T + Δ) = P(T) + P(Δ)` — so the delta result
//!   merges additively into the view.
//! - [`Database::delete_tokens`] fires provenance tokens (the paper's
//!   deletion propagation: set a token to `0` and renormalize). The same
//!   homomorphism that maps the base tables maps the view's retained
//!   group state — coefficients of deleted members vanish under the
//!   tensor's canonicalization — and only the touched groups re-render.
//!
//! ## Maintenance strategies
//!
//! The classifier inspects the *optimized* plan at materialization time:
//!
//! - **SPJ** (no aggregation, no set ops, each table scanned once, all
//!   base tables ground): deltas merge additively into the view relation.
//! - **Grouped aggregation** over such an SPJ input, with every group key
//!   surviving to the view's output: the view keeps a **group state** —
//!   one row per group holding the raw (un-normalized)
//!   [`Value::Agg`] tensors and the pre-δ membership sums — updated by
//!   [`ops::group_state_update`] and rendered by [`ops::delta_collapse`],
//!   both oracled against their literal `specops` twins.
//! - Anything else (`HAVING`, `AVG`, ungrouped aggregates, set ops,
//!   self-joins, symbolic base tables) degrades to **recomputation**:
//!   still maintained eagerly and still correct, just not O(delta).
//!
//! A maintenance failure never poisons the base mutation: the view is
//! marked *broken* (reads report the stored reason) and the `INSERT` /
//! `delete_tokens` itself succeeds.

use super::{next_version, scan_ground_cols, Database, DbSnapshot, EpochTables, PlanCache};
use crate::annot::ParseAnnotation;
use crate::exec::execute_plan;
use crate::phys::{self, PhysNode};
use crate::plan::{Plan, PlanAgg};
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::CommutativeSemiring;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::eval::map_hom_mk;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::par::ExecOptions;
use aggprov_core::{Prov, Value};
use aggprov_krel::error::{RelError, Result};
use aggprov_krel::relation::{Relation, Tuple};
use aggprov_krel::schema::Schema;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How a materialized view is kept current under mutations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Mutations propagate an annotation delta through the stored plan —
    /// O(delta · groups), never a re-execution.
    Incremental,
    /// Mutations re-execute the stored plan (the plan shape or a symbolic
    /// base table rules delta maintenance out; the view stays correct).
    Recompute,
}

/// One aggregate spec with owned names (the plan outlives no borrow).
#[derive(Clone, Debug)]
struct OwnedAgg {
    kind: MonoidKind,
    attr: String,
    out: String,
}

impl OwnedAgg {
    fn as_spec(&self) -> AggSpec<'_> {
        AggSpec {
            kind: self.kind,
            attr: &self.attr,
            out: &self.out,
        }
    }
}

/// The retained delta-maintenance machinery of one grouped-aggregation
/// view.
#[derive(Clone, Debug)]
struct AggState<A: AggAnnotation> {
    /// The physical plan of the `Aggregate` node's input subtree: the
    /// delta pipeline (one table swapped for the delta row) runs this.
    input_phys: Arc<PhysNode>,
    /// The resolved grouping column names (in the input schema).
    group_by: Vec<String>,
    /// The aggregate computations, in state-column order.
    aggs: Vec<OwnedAgg>,
    /// For each view output column, the position it reads in the collapsed
    /// aggregate row (the composed root projection; retains every key).
    out_cols: Vec<usize>,
    /// The group state: `group keys ++ raw Value::Agg cells`, annotations
    /// the pre-δ membership sums (see [`ops::group_state_update`]).
    state: MKRel<A>,
}

/// How the view's relation is brought up to date after a mutation.
#[derive(Clone, Debug)]
enum Maint<A: AggAnnotation> {
    /// Re-execute the stored plan.
    Recompute,
    /// Aggregate-free linear plan: delta results merge additively.
    Spj,
    /// Grouped aggregation: fold deltas into the group state.
    Agg(AggState<A>),
}

/// One materialized view, as stored in the epoch's view map.
#[derive(Clone, Debug)]
pub(crate) struct ViewEntry<A: AggAnnotation> {
    /// The defining SQL (re-planned on [`Database::register`] refreshes).
    sql: String,
    /// The full physical plan (the recomputation path).
    phys: Arc<PhysNode>,
    /// The base tables the view reads — its invalidation footprint.
    deps: Arc<[String]>,
    /// The maintenance machinery chosen at materialization time.
    maint: Maint<A>,
    /// The maintained result, provenance intact.
    rel: MKRel<A>,
    /// Set when maintenance failed: reads report the reason instead of a
    /// silently stale relation.
    broken: Option<String>,
}

fn unknown_view(name: &str) -> RelError {
    RelError::UnknownAttr(format!("view `{name}`"))
}

// ---------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------

/// Counts how often each base table is scanned (NOT deduplicated —
/// `Plan::scanned_tables` is — because a table scanned twice makes the
/// plan quadratic in that table's annotations and rules deltas out).
fn count_scans(plan: &Plan, counts: &mut BTreeMap<String, usize>) {
    match plan {
        Plan::Scan { table, .. } => *counts.entry(table.clone()).or_insert(0) += 1,
        Plan::Derived { input, .. }
        | Plan::Filter { input, .. }
        | Plan::AddUnitColumn { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Project { input, .. } => count_scans(input, counts),
        Plan::Product { left, right, .. }
        | Plan::Join { left, right, .. }
        | Plan::SetOp { left, right, .. } => {
            count_scans(left, counts);
            count_scans(right, counts);
        }
    }
}

/// `true` if the plan contains an `Aggregate` or `SetOp` node anywhere —
/// the nodes that are not linear in a single table's annotations
/// (`EXCEPT` is the §5 difference guard; aggregation folds into tensors).
fn contains_agg_or_setop(plan: &Plan) -> bool {
    match plan {
        Plan::Aggregate { .. } | Plan::SetOp { .. } => true,
        Plan::Scan { .. } => false,
        Plan::Derived { input, .. }
        | Plan::Filter { input, .. }
        | Plan::AddUnitColumn { input, .. }
        | Plan::Project { input, .. } => contains_agg_or_setop(input),
        Plan::Product { left, right, .. } | Plan::Join { left, right, .. } => {
            contains_agg_or_setop(left) || contains_agg_or_setop(right)
        }
    }
}

/// The shape an incrementally maintainable aggregation must have: a
/// single grouped `Aggregate` (no `AVG`, SPJ-only input) under a chain of
/// pure projections/re-aliasings that keeps every group key.
struct AggSkeleton<'p> {
    input: &'p Plan,
    group_by: &'p [String],
    aggs: &'p [PlanAgg],
    out_cols: Vec<usize>,
}

fn agg_skeleton(plan: &Plan) -> Option<AggSkeleton<'_>> {
    // `cols[i]` = the position in the *current* node's output that view
    // column `i` reads; composed downward through each projection.
    let mut cols: Vec<usize> = (0..plan.schema().arity()).collect();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Project { input, columns, .. } => {
                let mut next = Vec::with_capacity(cols.len());
                for c in &cols {
                    next.push(*columns.get(*c)?);
                }
                cols = next;
                cur = input;
            }
            Plan::Derived { input, .. } => cur = input,
            Plan::Aggregate {
                input,
                group_by,
                aggs,
                avg,
                ..
            } => {
                // Ungrouped aggregation emits a row even for an empty
                // input (not delta-shaped); AVG renormalizes after the
                // fold; a nested aggregate breaks input linearity.
                if group_by.is_empty() || !avg.is_empty() || contains_agg_or_setop(input) {
                    return None;
                }
                // Every group key must survive to the view output, or two
                // state rows could render onto one view row — and semiring
                // annotations have no subtraction to take them apart
                // again.
                for key in 0..group_by.len() {
                    if !cols.contains(&key) {
                        return None;
                    }
                }
                return Some(AggSkeleton {
                    input,
                    group_by,
                    aggs,
                    out_cols: cols,
                });
            }
            _ => return None,
        }
    }
}

/// Classifies the optimized plan and builds the maintenance machinery,
/// degrading to [`Maint::Recompute`] whenever delta soundness is not
/// syntactically evident.
fn build_maint<A: AggAnnotation + ParseAnnotation>(
    db: &Database<A>,
    optimized: &Plan,
    rel: &MKRel<A>,
    opts: &ExecOptions,
) -> Result<Maint<A>> {
    let mut counts = BTreeMap::new();
    count_scans(optimized, &mut counts);
    let single_scan = counts.values().all(|&c| c == 1);
    // Symbolic base tables (registered, not INSERTed) are rare and make
    // delta linearity depend on value-level token algebra — recompute.
    let all_ground = counts.keys().all(|t| {
        db.epoch
            .tables
            .get(t)
            .is_some_and(|e| e.ground_cols.iter().all(|g| *g))
    });
    if !single_scan || !all_ground {
        return Ok(Maint::Recompute);
    }
    if !contains_agg_or_setop(optimized) {
        return Ok(Maint::Spj);
    }
    let Some(sk) = agg_skeleton(optimized) else {
        return Ok(Maint::Recompute);
    };
    let input_schema = sk.input.schema();
    let aggs: Vec<OwnedAgg> = sk
        .aggs
        .iter()
        .map(|a| OwnedAgg {
            kind: a.kind,
            attr: a.attr.clone(),
            out: a.out.clone(),
        })
        .collect();
    let group_refs: Vec<&str> = sk.group_by.iter().map(|s| s.as_str()).collect();
    for g in &group_refs {
        input_schema.index_of(g)?;
    }
    let specs: Vec<AggSpec<'_>> = aggs.iter().map(|a| a.as_spec()).collect();
    let state_schema = Schema::new(
        group_refs
            .iter()
            .copied()
            .chain(aggs.iter().map(|a| a.out.as_str())),
    )?;
    // Build the initial group state from one full run of the aggregate's
    // input subtree (the whole relation is the first "delta").
    let input_phys = Arc::new(phys::lower(sk.input)?);
    let input_rel = execute_plan(db, &input_phys, &[], 0, opts)?;
    let state = ops::group_state_update(
        Relation::empty(state_schema),
        &input_rel,
        &group_refs,
        &specs,
    )?;
    let agg = AggState {
        input_phys,
        group_by: sk.group_by.to_vec(),
        aggs,
        out_cols: sk.out_cols,
        state,
    };
    // Canary: rendering the fresh state must reproduce the executor's
    // result bit for bit; if it ever does not, recomputation is the
    // always-correct fallback (and the proptest suite will be failing).
    if render_view(&agg, rel.schema())? != *rel {
        return Ok(Maint::Recompute);
    }
    Ok(Maint::Agg(agg))
}

// ---------------------------------------------------------------------
// Rendering and delta plumbing
// ---------------------------------------------------------------------

/// Renders the group state into the view's output relation: collapse
/// (normalize tensors, δ the membership sums, drop empty groups), then
/// apply the composed root projection. Injective on rows because
/// `out_cols` retains every group key.
fn render_view<A: AggAnnotation>(agg: &AggState<A>, out_schema: &Schema) -> Result<MKRel<A>> {
    let collapsed = ops::delta_collapse(&agg.state)?;
    let mut out = Relation::empty(out_schema.clone());
    for (t, k) in collapsed.iter() {
        out.add(t.project(&agg.out_cols), k.clone())?;
    }
    Ok(out)
}

/// The subset of state rows whose group key (the first `key_positions`
/// columns) is in `keys`.
fn state_rows_for<A: AggAnnotation>(
    state: &MKRel<A>,
    keys: &BTreeSet<Tuple<Value<A>>>,
    key_positions: &[usize],
) -> Result<MKRel<A>> {
    let mut out = Relation::empty(state.schema().clone());
    for (t, k) in state.iter() {
        if keys.contains(&t.project(key_positions)) {
            out.add(t.clone(), k.clone())?;
        }
    }
    Ok(out)
}

/// Replaces the view rows rendered from the `old_sub` state rows with
/// those rendered from `new_sub` — the touched-groups-only counterpart
/// of [`render_view`]. Sound because rendering is injective per group
/// (`out_cols` keeps every key), so the full render is the disjoint
/// union of per-group renders and a group's rows can be swapped in
/// place. This keeps per-mutation work O(touched groups), not O(view).
fn patch_rendered<A: AggAnnotation>(
    rel: &mut MKRel<A>,
    out_cols: &[usize],
    old_sub: &MKRel<A>,
    new_sub: &MKRel<A>,
) -> Result<()> {
    for (t, _) in ops::delta_collapse(old_sub)?.iter() {
        rel.remove(&t.project(out_cols));
    }
    for (t, k) in ops::delta_collapse(new_sub)?.iter() {
        rel.add(t.project(out_cols), k.clone())?;
    }
    Ok(())
}

/// A database whose epoch holds `table` replaced by the single delta row
/// and every other table at its current state — the input the linear
/// plans turn into a result delta.
fn delta_db<A: AggAnnotation + ParseAnnotation>(
    db: &Database<A>,
    table: &str,
    row: Tuple<Value<A>>,
    ann: A,
) -> Result<Database<A>> {
    let mut tables = db.epoch.tables.clone();
    let entry = tables
        .get_mut(table)
        .ok_or_else(|| RelError::UnknownAttr(format!("table `{table}`")))?;
    let mut delta = Relation::empty(entry.rel.schema().clone());
    delta.add(row, ann)?;
    entry.rel = delta;
    Ok(Database {
        epoch: Arc::new(EpochTables {
            tables,
            views: BTreeMap::new(),
        }),
        epoch_id: db.epoch_id,
        cache: Arc::new(PlanCache::default()),
    })
}

/// Applies one inserted row to one view, per its strategy.
fn apply_insert<A: AggAnnotation + ParseAnnotation>(
    db: &Database<A>,
    entry: &mut ViewEntry<A>,
    table: &str,
    row: Tuple<Value<A>>,
    ann: A,
    opts: &ExecOptions,
) -> Result<()> {
    match &mut entry.maint {
        Maint::Recompute => {
            entry.rel = execute_plan(db, &entry.phys, &[], 0, opts)?;
        }
        Maint::Spj => {
            let d = delta_db(db, table, row, ann)?;
            let delta = execute_plan(&d, &entry.phys, &[], 0, opts)?;
            // Additive merge: `Relation::add` sums annotations of equal
            // tuples and drops zero rows — exactly bag-semiring union.
            for (t, k) in delta.iter() {
                entry.rel.add(t.clone(), k.clone())?;
            }
        }
        Maint::Agg(agg) => {
            let d = delta_db(db, table, row, ann)?;
            let delta = execute_plan(&d, &agg.input_phys, &[], 0, opts)?;
            if !delta.is_empty() {
                let group_refs: Vec<&str> = agg.group_by.iter().map(|s| s.as_str()).collect();
                let specs: Vec<AggSpec<'_>> = agg.aggs.iter().map(|a| a.as_spec()).collect();
                // The touched group keys, projected out of the delta rows.
                let mut gidx = Vec::with_capacity(group_refs.len());
                for g in &group_refs {
                    gidx.push(delta.schema().index_of(g)?);
                }
                let keys: BTreeSet<Tuple<Value<A>>> =
                    delta.iter().map(|(t, _)| t.project(&gidx)).collect();
                let key_positions: Vec<usize> = (0..group_refs.len()).collect();
                let old_sub = state_rows_for(&agg.state, &keys, &key_positions)?;
                let placeholder = Relation::empty(agg.state.schema().clone());
                let taken = std::mem::replace(&mut agg.state, placeholder);
                agg.state = ops::group_state_update(taken, &delta, &group_refs, &specs)?;
                let new_sub = state_rows_for(&agg.state, &keys, &key_positions)?;
                patch_rendered(&mut entry.rel, &agg.out_cols, &old_sub, &new_sub)?;
            }
        }
    }
    Ok(())
}

/// The `INSERT` hook: propagates the new row into every live view that
/// depends on `table`. A per-view failure marks that view broken and
/// never fails the insert itself.
pub(super) fn maintain_after_insert<A: AggAnnotation + ParseAnnotation>(
    db: &mut Database<A>,
    table: &str,
    row: Tuple<Value<A>>,
    ann: A,
) -> Result<()> {
    let affected = dependents(db, table);
    if affected.is_empty() {
        return Ok(());
    }
    let opts = ExecOptions::from_env()?;
    for name in affected {
        let Some(mut entry) = Arc::make_mut(&mut db.epoch).views.remove(&name) else {
            continue;
        };
        if let Err(e) = apply_insert(db, &mut entry, table, row.clone(), ann.clone(), &opts) {
            entry.broken = Some(format!(
                "maintenance failed after INSERT into `{table}`: {e}"
            ));
        }
        Arc::make_mut(&mut db.epoch).views.insert(name, entry);
    }
    Ok(())
}

/// The live (non-broken) views that read `table`.
fn dependents<A: AggAnnotation + ParseAnnotation>(db: &Database<A>, table: &str) -> Vec<String> {
    db.epoch
        .views
        .iter()
        .filter(|(_, v)| v.broken.is_none() && v.deps.iter().any(|d| d == table))
        .map(|(n, _)| n.clone())
        .collect()
}

/// Marks every view depending on `table` broken (used by `DROP TABLE`,
/// where there is no state left to maintain against).
pub(super) fn break_dependents<A: AggAnnotation + ParseAnnotation>(
    db: &mut Database<A>,
    table: &str,
    why: &str,
) {
    let epoch = Arc::make_mut(&mut db.epoch);
    for v in epoch.views.values_mut() {
        if v.broken.is_none() && v.deps.iter().any(|d| d == table) {
            v.broken = Some(format!("depends on `{table}`: {why}"));
        }
    }
}

/// Re-materializes every view depending on `table` from its SQL — the
/// [`Database::register`] hook, where the table was replaced wholesale
/// and no delta exists. Re-plans, re-executes, and re-classifies (the
/// replacement may have changed groundness). Failures mark the view
/// broken.
pub(super) fn refresh_dependents<A: AggAnnotation + ParseAnnotation>(
    db: &mut Database<A>,
    table: &str,
) {
    let affected = dependents(db, table);
    for name in affected {
        let Some(mut entry) = Arc::make_mut(&mut db.epoch).views.remove(&name) else {
            continue;
        };
        if let Err(e) = rematerialize(db, &mut entry) {
            entry.broken = Some(format!(
                "re-materialization after register(`{table}`) failed: {e}"
            ));
        }
        Arc::make_mut(&mut db.epoch).views.insert(name, entry);
    }
}

/// Re-plans and re-runs a view from its defining SQL, refreshing its
/// plan, dependency set, strategy, and relation in place.
fn rematerialize<A: AggAnnotation + ParseAnnotation>(
    db: &Database<A>,
    entry: &mut ViewEntry<A>,
) -> Result<()> {
    let stmt = db.cached_statement(&entry.sql)?;
    let opts = ExecOptions::from_env()?;
    let rel = execute_plan(db, &stmt.phys, &[], 0, &opts)?;
    let maint = build_maint(db, &stmt.optimized, &rel, &opts)?;
    let deps: Vec<String> = stmt.logical.scanned_tables().into_iter().collect();
    entry.phys = stmt.phys;
    entry.deps = deps.into();
    entry.maint = maint;
    entry.rel = rel;
    entry.broken = None;
    Ok(())
}

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

impl<A: AggAnnotation + ParseAnnotation> Database<A> {
    /// Materializes `sql` as the view `name`: evaluates it once, retains
    /// the annotated result, and maintains it under every subsequent
    /// mutation — incrementally when the plan shape allows (see
    /// [`view_strategy`](Database::view_strategy)), by eager
    /// recomputation otherwise.
    ///
    /// Views live in a namespace of their own (they never shadow a
    /// table), are part of the epoch ([`Database::snapshot`] freezes
    /// them), and cannot take `$n` parameters.
    ///
    /// ```
    /// use aggprov_engine::{MaintenanceStrategy, ProvDb};
    ///
    /// let mut db = ProvDb::new();
    /// db.exec("CREATE TABLE emp (dept TEXT, sal NUM)").unwrap();
    /// db.materialize("mass", "SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept")
    ///     .unwrap();
    /// assert_eq!(db.view_strategy("mass").unwrap(), MaintenanceStrategy::Incremental);
    ///
    /// db.exec("INSERT INTO emp VALUES ('d1', 20) PROVENANCE p1").unwrap();
    /// db.exec("INSERT INTO emp VALUES ('d1', 10) PROVENANCE p2").unwrap();
    /// // The view tracked both inserts without re-running the query:
    /// assert_eq!(db.view("mass").unwrap().len(), 1);
    /// ```
    pub fn materialize(&mut self, name: &str, sql: &str) -> Result<()> {
        if self.epoch.views.contains_key(name) {
            return Err(RelError::DuplicateAttr(format!("view `{name}`")));
        }
        let stmt = self.cached_statement(sql)?;
        if stmt.param_count > 0 {
            return Err(RelError::Unsupported(
                "materialized views cannot take `$n` parameters".into(),
            ));
        }
        let opts = ExecOptions::from_env()?;
        let rel = execute_plan(self, &stmt.phys, &[], 0, &opts)?;
        let maint = build_maint(self, &stmt.optimized, &rel, &opts)?;
        let deps: Vec<String> = stmt.logical.scanned_tables().into_iter().collect();
        let entry = ViewEntry {
            sql: sql.to_string(),
            phys: stmt.phys,
            deps: deps.into(),
            maint,
            rel,
            broken: None,
        };
        self.epoch_mut().views.insert(name.to_string(), entry);
        Ok(())
    }

    /// Drops the view `name`.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        if !self.epoch.views.contains_key(name) {
            return Err(unknown_view(name));
        }
        self.epoch_mut().views.remove(name);
        Ok(())
    }

    fn view_entry(&self, name: &str) -> Result<&ViewEntry<A>> {
        self.epoch.views.get(name).ok_or_else(|| unknown_view(name))
    }

    /// The maintained result of view `name`, provenance intact. Errors if
    /// the view is broken (its base table was dropped, or maintenance
    /// failed) rather than returning stale rows.
    pub fn view(&self, name: &str) -> Result<&MKRel<A>> {
        let entry = self.view_entry(name)?;
        match &entry.broken {
            Some(why) => Err(RelError::Unsupported(format!(
                "view `{name}` is broken: {why}"
            ))),
            None => Ok(&entry.rel),
        }
    }

    /// The names of all materialized views (broken ones included).
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.epoch.views.keys().map(|s| s.as_str())
    }

    /// How view `name` is maintained (chosen at materialization from the
    /// optimized plan's shape; see the module docs for the criteria).
    pub fn view_strategy(&self, name: &str) -> Result<MaintenanceStrategy> {
        Ok(match self.view_entry(name)?.maint {
            Maint::Recompute => MaintenanceStrategy::Recompute,
            Maint::Spj | Maint::Agg(_) => MaintenanceStrategy::Incremental,
        })
    }

    /// The SQL the view was materialized from.
    pub fn view_sql(&self, name: &str) -> Result<&str> {
        Ok(&self.view_entry(name)?.sql)
    }
}

impl Database<Prov> {
    /// Deletes source tuples by firing their provenance `tokens` — the
    /// paper's deletion propagation, applied to the database itself: every
    /// base-table annotation maps under the hom sending each fired token
    /// to `0` (rows whose annotation vanishes disappear), and every
    /// dependent view is delta-maintained — incremental views re-render
    /// only their touched groups, never re-executing their plan.
    ///
    /// The one-shot, result-level special case of this is
    /// [`ResultSet::delete_tokens`](crate::ResultSet::delete_tokens); the
    /// two agree bit for bit (an integration test pins the contract).
    pub fn delete_tokens<I, S>(&mut self, tokens: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let deleted: BTreeSet<String> =
            tokens.into_iter().map(|t| t.as_ref().to_string()).collect();
        if deleted.is_empty() {
            return Ok(());
        }
        // The deletion hom (each fired token ↦ 0, everything else fixed),
        // computed as the O(size) canonical-term filter rather than by
        // `eval`-based re-summation — firing 50 tokens against a view
        // whose membership sums hold 10⁵ terms must not go quadratic.
        let h = move |p: &NatPoly| -> NatPoly { p.drop_vars(&mut |v| deleted.contains(v.name())) };
        // 1) Fire the tokens in every base table, tracking which tables
        //    actually changed — the precise invalidation footprint.
        let mut remapped: Vec<(String, MKRel<Prov>)> = Vec::new();
        for (name, entry) in &self.epoch.tables {
            let mapped = map_hom_mk(&entry.rel, &h);
            if mapped != entry.rel {
                remapped.push((name.clone(), mapped));
            }
        }
        if remapped.is_empty() {
            return Ok(());
        }
        let changed: BTreeSet<String> = remapped.iter().map(|(n, _)| n.clone()).collect();
        for (name, rel) in remapped {
            self.cache.invalidate_table(&name);
            let version = next_version();
            let Some(entry) = self.tables_mut().get_mut(&name) else {
                continue;
            };
            // Token deletion never makes a ground column symbolic, so an
            // all-ground table keeps its flags without a rescan.
            if entry.ground_cols.iter().any(|g| !*g) {
                entry.ground_cols = scan_ground_cols(&rel);
            }
            entry.rel = rel;
            entry.version = version;
        }
        // 2) Maintain the views whose dependencies changed.
        let affected: Vec<String> = self
            .epoch
            .views
            .iter()
            .filter(|(_, v)| v.broken.is_none() && v.deps.iter().any(|d| changed.contains(d)))
            .map(|(n, _)| n.clone())
            .collect();
        if affected.is_empty() {
            return Ok(());
        }
        let opts = ExecOptions::from_env()?;
        for name in affected {
            let Some(mut entry) = Arc::make_mut(&mut self.epoch).views.remove(&name) else {
                continue;
            };
            if let Err(e) = apply_delete(self, &mut entry, &h, &opts) {
                entry.broken = Some(format!("maintenance failed after delete_tokens: {e}"));
            }
            Arc::make_mut(&mut self.epoch).views.insert(name, entry);
        }
        Ok(())
    }
}

/// Applies a token-deletion hom to one view, per its strategy.
fn apply_delete(
    db: &Database<Prov>,
    entry: &mut ViewEntry<Prov>,
    h: &impl Fn(&NatPoly) -> NatPoly,
    opts: &ExecOptions,
) -> Result<()> {
    match &mut entry.maint {
        Maint::Recompute => {
            entry.rel = execute_plan(db, &entry.phys, &[], 0, opts)?;
        }
        Maint::Spj => {
            // The plan is linear in base annotations and all cells are
            // ground, so the lifted hom commutes with the plan: mapping
            // the retained result *is* re-executing over mapped inputs.
            entry.rel = map_hom_mk(&entry.rel, h);
        }
        Maint::Agg(agg) => {
            // Map the group state in place: membership sums through the
            // hom (zero ⇒ the whole group is gone), tensor coefficients
            // through the lifted hom — the canonical form drops the
            // deleted members' terms, exactly matching a from-scratch
            // fold over the surviving rows. Cells stay *raw* (`map_hom`
            // on a `Value` would normalize and lose the tensor). Group
            // keys are ground, so the hom never merges two state rows,
            // and only the rows it actually changed re-render.
            let schema = agg.state.schema().clone();
            let mut mapped: BTreeMap<Tuple<Value<Prov>>, Prov> = BTreeMap::new();
            let mut old_sub = Relation::empty(schema.clone());
            let mut new_sub = Relation::empty(schema.clone());
            for (t, k) in agg.state.iter() {
                let ann = k.map_hom(h);
                if ann.is_zero() {
                    old_sub.add(t.clone(), k.clone())?;
                    continue;
                }
                let row: Vec<Value<Prov>> = t
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Agg(kind, tv) => {
                            Value::Agg(*kind, tv.map_coeffs(kind, &mut |a| a.map_hom(h)))
                        }
                        Value::Const(c) => Value::Const(c.clone()),
                    })
                    .collect();
                let new_t = Tuple::new(row);
                if new_t != *t || ann != *k {
                    old_sub.add(t.clone(), k.clone())?;
                    new_sub.add(new_t.clone(), ann.clone())?;
                }
                mapped.insert(new_t, ann);
            }
            agg.state = Relation::from_tuple_map(schema, mapped)?;
            patch_rendered(&mut entry.rel, &agg.out_cols, &old_sub, &new_sub)?;
        }
    }
    Ok(())
}

impl<A: AggAnnotation + ParseAnnotation> DbSnapshot<A> {
    /// The maintained result of view `name` in the frozen epoch (views
    /// are epoch state: a snapshot sees them exactly as of its epoch).
    pub fn view(&self, name: &str) -> Result<&MKRel<A>> {
        self.db.view(name)
    }

    /// The view names of the frozen epoch.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.db.view_names()
    }

    /// How view `name` is maintained (see [`Database::view_strategy`]).
    pub fn view_strategy(&self, name: &str) -> Result<MaintenanceStrategy> {
        self.db.view_strategy(name)
    }
}
