//! End-to-end property tests for the engine's columnar batch pipeline:
//! prepared queries executed through the physical-plan driver
//! (Scan → Filter → Project → HashJoin chunks, Aggregate/SetOp breakers)
//! must be **bit-identical** to hand-composed `specops`/`ops` oracles
//! over mixed ground/symbolic inputs, at `threads ∈ {1, 4}`.
//!
//! This is the PR 3 pattern one layer up: where
//! `par_determinism_proptests` pins the operators, these pin the whole
//! pipeline — the chunk conversions, the selection-vector filter, the
//! deferred-merge materialization at breakers, and the symbolic-fringe
//! fallbacks all sit between the SQL text and the result compared here.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::{difference, specops, ExecOptions, Value};
use aggprov_engine::ProvDb;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell, as in the PR 2/3 suites (≈1/3 symbolic).
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        ),
    }
}

fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

/// Builds a two-column relation; `b` numeric-or-symbolic (it sits under
/// order comparisons), `a` fully mixed.
fn rel2(prefix: &str, a: &str, b: &str, rows: Vec<(RawVal, RawVal)>) -> MKRel<P> {
    Relation::from_rows(
        Schema::new([a, b]).unwrap(),
        rows.into_iter().enumerate().map(|(i, (x, y))| {
            (
                vec![decode_val(x), decode_num_val(y)],
                tok(&format!("{prefix}{i}")),
            )
        }),
    )
    .unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<(RawVal, RawVal)>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7)
}

/// A scan oracle: the registered relation with its alias-prefixed schema.
fn prefixed(rel: &MKRel<P>, names: &[&str]) -> MKRel<P> {
    rel.clone()
        .with_schema(Schema::new(names.iter().copied()).unwrap())
        .unwrap()
}

/// Executes a prepared query at `threads ∈ {1, 4}` with typed columns on
/// and off (the boxed `AGGPROV_TYPED=0` baseline), asserts all four
/// agree, and returns the result.
fn run_both(db: &ProvDb, sql: &str) -> MKRel<P> {
    let stmt = db.prepare(sql).unwrap();
    let t1 = stmt
        .execute_with_opts(&[], &ExecOptions::serial())
        .unwrap()
        .into_relation();
    let t4 = stmt
        .execute_with_opts(&[], &ExecOptions::with_threads(4))
        .unwrap()
        .into_relation();
    assert_eq!(t1, t4, "thread count changed the result");
    for threads in [1, 4] {
        let boxed = stmt
            .execute_with_opts(&[], &ExecOptions::with_threads(threads).with_typed(false))
            .unwrap()
            .into_relation();
        assert_eq!(
            t1, boxed,
            "typed columns changed the result at threads {threads}"
        );
    }
    t1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn filter_project_join_matches_spec(r_rows in arb_rows(), s_rows in arb_rows(), v in -2i64..5) {
        // The headline pipeline: WHERE → JOIN → SELECT, all chunked on
        // ground data, token-path fallbacks on symbolic rows.
        let r = rel2("r", "a", "b", r_rows);
        let s = rel2("s", "c", "d", s_rows);
        let mut db = ProvDb::new();
        db.register("r", r.clone());
        db.register("s", s.clone());
        let got = run_both(
            &db,
            &format!("SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < {v}"),
        );

        let j = specops::join_on(
            &prefixed(&r, &["r.a", "r.b"]),
            &prefixed(&s, &["s.c", "s.d"]),
            &[("r.a", "s.c")],
        )
        .unwrap();
        let f = ops::select_cmp(&j, "r.b", CmpPred::Lt, &Value::int(v)).unwrap();
        let p = specops::project(&f, &["r.a", "s.d"]).unwrap();
        let want = p.with_schema(Schema::new(["a", "d"]).unwrap()).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn group_by_having_matches_spec(rows in arb_rows(), h in -2i64..8) {
        // AddUnitColumn → Aggregate (breaker) → HAVING filter → Project.
        let t = rel2("t", "g", "v", rows);
        let mut db = ProvDb::new();
        db.register("t", t.clone());
        let got = run_both(
            &db,
            &format!("SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g HAVING s = {h}"),
        );

        // Oracle: append the unit column by hand, run the literal §4.3
        // group-by, then the tokened selection and the projection.
        let mut unit = Relation::empty(Schema::new(["t.g", "t.v", "__one"]).unwrap());
        for (tu, k) in prefixed(&t, &["t.g", "t.v"]).iter() {
            let mut row = tu.values().to_vec();
            row.push(Value::int(1));
            unit.insert(row, k.clone()).unwrap();
        }
        let grouped = specops::group_by(
            &unit,
            &["t.g"],
            &[
                AggSpec { kind: MonoidKind::Sum, attr: "t.v", out: "s" },
                AggSpec { kind: MonoidKind::Sum, attr: "__one", out: "n" },
            ],
        )
        .unwrap();
        let had = ops::select_eq(&grouped, "s", &Value::int(h)).unwrap();
        let p = specops::project(&had, &["t.g", "s", "n"]).unwrap();
        let want = p.with_schema(Schema::new(["g", "s", "n"]).unwrap()).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_and_except_match_ops(r_rows in arb_rows(), s_rows in arb_rows()) {
        // SetOp breakers over mixed inputs; EXCEPT runs the §5 hybrid
        // difference (including the token-weighted membership of symbolic
        // rows against ground supports).
        let r = rel2("r", "a", "b", r_rows);
        let s = rel2("s", "c", "d", s_rows);
        let mut db = ProvDb::new();
        db.register("r", r.clone());
        db.register("s", s.clone());

        let lhs = specops::project(&prefixed(&r, &["r.a", "r.b"]), &["r.a"])
            .unwrap()
            .with_schema(Schema::new(["a"]).unwrap())
            .unwrap();
        let rhs = specops::project(&prefixed(&s, &["s.c", "s.d"]), &["s.c"])
            .unwrap()
            .with_schema(Schema::new(["a"]).unwrap())
            .unwrap();

        let got = run_both(&db, "SELECT a FROM r UNION SELECT c FROM s");
        let want = specops::union(&lhs, &rhs).unwrap();
        prop_assert_eq!(got, want);

        let got = run_both(&db, "SELECT a FROM r EXCEPT SELECT c FROM s");
        let want = difference::difference(&lhs, &rhs).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn avg_divides_sum_by_count(rows in prop::collection::vec((0i64..3, -5i64..20), 0..8)) {
        // The batched AVG-division kernel against the SUM/COUNT parts it
        // divides — over a bag database, where AVG resolves.
        let mut db: aggprov_engine::Database<aggprov_algebra::semiring::Nat> =
            aggprov_engine::Database::new();
        db.exec("CREATE TABLE t (g NUM, v NUM)").unwrap();
        for (g, v) in &rows {
            db.exec(&format!("INSERT INTO t VALUES ({g}, {v})")).unwrap();
        }
        let parts = db
            .query("SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g")
            .unwrap();
        let avg = db
            .query("SELECT g, AVG(v) AS m FROM t GROUP BY g")
            .unwrap();
        prop_assert_eq!(avg.len(), parts.len());
        for (tu, _) in parts.iter() {
            let g = tu.get(0).clone();
            let s = tu.get(1).as_const().unwrap().as_num().unwrap();
            let n = tu.get(2).as_const().unwrap().as_num().unwrap();
            let want = s.checked_div(&n).unwrap();
            let row = avg
                .iter()
                .find(|(a, _)| a.get(0) == &g)
                .expect("group present");
            prop_assert_eq!(
                row.0.get(1),
                &Value::Const(Const::Num(want)),
                "AVG for group {:?}", g
            );
        }
    }
}

#[test]
fn empty_and_all_symbolic_tables_through_the_pipeline() {
    // Edge cases named by the issue: empty batches and all-symbolic
    // relations must flow through every pipeline node.
    let mut db = ProvDb::new();
    db.register("e", Relation::empty(Schema::new(["a", "b"]).unwrap()));
    let sym_rel: MKRel<P> = Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        [
            (
                vec![decode_val((4, 0, 1)), decode_num_val((5, 1, 2))],
                tok("m0"),
            ),
            (
                vec![decode_val((5, 2, 3)), decode_num_val((4, 3, 4))],
                tok("m1"),
            ),
        ],
    )
    .unwrap();
    db.register("m", sym_rel.clone());

    let out = run_both(&db, "SELECT a FROM e WHERE b < 3");
    assert!(out.is_empty());
    let out = run_both(&db, "SELECT e.a FROM e JOIN m ON e.a = m.a");
    assert!(out.is_empty());

    // All-symbolic table: every node takes its fringe/fallback path.
    let got = run_both(&db, "SELECT a FROM m WHERE b < 3");
    let f = ops::select_cmp(
        &prefixed(&sym_rel, &["m.a", "m.b"]),
        "m.b",
        CmpPred::Lt,
        &Value::int(3),
    )
    .unwrap();
    let want = specops::project(&f, &["m.a"])
        .unwrap()
        .with_schema(Schema::new(["a"]).unwrap())
        .unwrap();
    assert_eq!(got, want);
}
