//! Property tests for the plan optimizer ([`aggprov_engine::opt`]):
//! optimized plans must be **bit-identical** to the unoptimized lowered
//! plans — support, values, and every annotation — over mixed
//! ground/symbolic relations, at `threads ∈ {1, 4}`, and must agree with
//! hand-composed `specops` oracles on the shapes the rewrites target.
//!
//! Two input regimes matter:
//!
//! * **fully ground tables** — every gate opens, so pushdown and join
//!   reordering actually fire and the equivalence is exercised on the
//!   rewritten shapes;
//! * **mixed ground/symbolic tables** — the gates open selectively
//!   (per-column groundness from the catalog), so the same SQL sometimes
//!   rewrites and sometimes must not; either way the result is the same
//!   relation, bit for bit.
//!
//! Provenance equality under valuation is implied by bit-identity, but
//! one test valuates explicitly anyway — the optimizer must never change
//! what deletion propagation or clearance sees.

use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{specops, ExecOptions, Value};
use aggprov_engine::ProvDb;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell, as in the PR 2–4 suites (≈1/3 symbolic).
type RawVal = (u8, usize, i64);

fn decode_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    match kind {
        0..=2 => Value::int(n),
        3 => Value::str(if n % 2 == 0 { "s0" } else { "s1" }),
        _ => Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        ),
    }
}

/// Numeric-or-symbolic cell, for columns under order comparisons or
/// aggregation (text there is a carrier-type error on both paths).
fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

/// Ground-only cell: the regime where every optimizer gate opens.
fn decode_ground(raw: RawVal) -> Value<P> {
    let (kind, _, n) = raw;
    if kind == 3 {
        Value::str(if n % 2 == 0 { "s0" } else { "s1" })
    } else {
        Value::int(n)
    }
}

/// Ground numeric cell.
fn decode_ground_num(raw: RawVal) -> Value<P> {
    Value::int(raw.2)
}

fn raw_val() -> impl Strategy<Value = RawVal> {
    (0u8..6, 0..VARS.len(), -2i64..5)
}

fn arb_rows() -> impl Strategy<Value = Vec<(RawVal, RawVal)>> {
    prop::collection::vec((raw_val(), raw_val()), 0..7)
}

fn rel2(
    prefix: &str,
    a: &str,
    b: &str,
    rows: Vec<(RawVal, RawVal)>,
    decode_a: fn(RawVal) -> Value<P>,
    decode_b: fn(RawVal) -> Value<P>,
) -> MKRel<P> {
    Relation::from_rows(
        Schema::new([a, b]).unwrap(),
        rows.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (vec![decode_a(x), decode_b(y)], tok(&format!("{prefix}{i}")))),
    )
    .unwrap()
}

/// Executes the same SQL through the optimizer and through the literal
/// lowered plan, at two thread counts, and asserts all four agree bit for
/// bit. Returns the (shared) result.
fn assert_equivalent(db: &ProvDb, sql: &str) -> MKRel<P> {
    let optimized = db.prepare(sql).unwrap();
    let literal = db.prepare_unoptimized(sql).unwrap();
    let mut results = Vec::new();
    for opts in [ExecOptions::serial(), ExecOptions::with_threads(4)] {
        results.push(
            optimized
                .execute_with_opts(&[], &opts)
                .unwrap()
                .into_relation(),
        );
        results.push(
            literal
                .execute_with_opts(&[], &opts)
                .unwrap()
                .into_relation(),
        );
    }
    let first = results[0].clone();
    for r in &results[1..] {
        assert_eq!(
            &first,
            r,
            "optimized/unoptimized × threads disagree for {sql}\nplans:\n{}",
            optimized.plan_display()
        );
    }
    first
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pushdown_through_join_is_bit_identical(
        r_rows in arb_rows(),
        s_rows in arb_rows(),
        v in -2i64..5,
    ) {
        // Mixed values: the pushdown gate opens only when the generated
        // `r.b` column happens to be fully ground.
        let r = rel2("r", "a", "b", r_rows, decode_val, decode_num_val);
        let s = rel2("s", "c", "d", s_rows, decode_val, decode_num_val);
        let mut db = ProvDb::new();
        db.register("r", r.clone());
        db.register("s", s.clone());
        let got = assert_equivalent(
            &db,
            &format!("SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < {v}"),
        );

        // The specops oracle for the same query (σ after the join, as the
        // unoptimized plan evaluates it).
        let prefixed = |rel: &MKRel<P>, names: [&str; 2]| {
            rel.clone().with_schema(Schema::new(names).unwrap()).unwrap()
        };
        let j = specops::join_on(
            &prefixed(&r, ["r.a", "r.b"]),
            &prefixed(&s, ["s.c", "s.d"]),
            &[("r.a", "s.c")],
        ).unwrap();
        let f = aggprov_core::ops::select_cmp(
            &j, "r.b", aggprov_core::km::CmpPred::Lt, &Value::int(v),
        ).unwrap();
        let p = specops::project(&f, &["r.a", "s.d"]).unwrap();
        let want = p.with_schema(Schema::new(["a", "d"]).unwrap()).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ground_chains_with_reordering_are_bit_identical(
        a_rows in arb_rows(),
        b_rows in arb_rows(),
        c_rows in arb_rows(),
        v in -2i64..5,
    ) {
        // Fully ground three-way chain written largest-first-ish: both
        // pushdown and greedy reordering (with its compensating
        // projection) fire whenever cardinalities make it profitable.
        let a = rel2("a", "k", "u", a_rows, decode_ground, decode_ground_num);
        let b = rel2("b", "k2", "v", b_rows, decode_ground, decode_ground_num);
        let c = rel2("c", "k3", "w", c_rows, decode_ground, decode_ground_num);
        let mut db = ProvDb::new();
        db.register("a", a);
        db.register("b", b);
        db.register("c", c);
        assert_equivalent(
            &db,
            &format!(
                "SELECT a.u, b.v, c.w FROM a JOIN b ON a.k = b.k2 \
                 JOIN c ON b.v = c.k3 WHERE c.w < {v}"
            ),
        );
        // A comma-product chain with straddling and one-sided WHERE
        // conjuncts (products reorder too; straddling conjuncts may not
        // sink past the product that joins their sides).
        assert_equivalent(
            &db,
            &format!(
                "SELECT a.u, c.w FROM a, b, c \
                 WHERE a.k = b.k2 AND b.v = c.k3 AND a.u < {v}"
            ),
        );
    }

    #[test]
    fn aggregates_and_setops_stay_equivalent(
        t_rows in arb_rows(),
        s_rows in arb_rows(),
        h in -2i64..8,
    ) {
        // HAVING must not cross the aggregate; the derived-subquery filter
        // must stop at the union. Either way: bit-identical results.
        let t = rel2("t", "g", "n", t_rows, decode_val, decode_num_val);
        let s = rel2("s", "g2", "m", s_rows, decode_val, decode_num_val);
        let mut db = ProvDb::new();
        db.register("t", t);
        db.register("s", s);
        assert_equivalent(
            &db,
            &format!("SELECT g, SUM(n) AS total FROM t GROUP BY g HAVING total = {h}"),
        );
        assert_equivalent(
            &db,
            &format!(
                "SELECT q.g FROM (SELECT g FROM t UNION SELECT g2 AS g FROM s) q \
                 WHERE q.g = {h}"
            ),
        );
        assert_equivalent(
            &db,
            "SELECT g FROM t EXCEPT SELECT g2 FROM s",
        );
    }

    #[test]
    fn valuations_see_identical_provenance(
        r_rows in arb_rows(),
        s_rows in arb_rows(),
        v in -2i64..5,
    ) {
        // Bit-identity implies this, but the fluent path is what users
        // see: deletion propagation and valuation must not observe the
        // optimizer.
        let r = rel2("r", "a", "b", r_rows, decode_val, decode_num_val);
        let s = rel2("s", "c", "d", s_rows, decode_val, decode_num_val);
        let mut db = ProvDb::new();
        db.register("r", r);
        db.register("s", s);
        let sql = format!("SELECT r.a FROM r JOIN s ON r.a = s.c WHERE r.b < {v}");
        let opt = db.prepare(&sql).unwrap().execute().unwrap();
        let lit = db.prepare_unoptimized(&sql).unwrap().execute().unwrap();
        let val = Valuation::<Nat>::ones();
        prop_assert_eq!(
            opt.valuate(&val).relation(),
            lit.valuate(&val).relation()
        );
        prop_assert_eq!(
            opt.delete_tokens(["r0", "s1", "x"]).relation(),
            lit.delete_tokens(["r0", "s1", "x"]).relation()
        );
    }
}

// --------------------------------------------------------------- plan cache

#[test]
fn prepare_hits_the_plan_cache_until_invalidated() {
    let mut db = ProvDb::new();
    db.exec("CREATE TABLE t (a NUM, b NUM); INSERT INTO t VALUES (1, 2)")
        .unwrap();
    let sql = "SELECT a FROM t WHERE b = 1";

    let first = db.prepare(sql).unwrap();
    let second = db.prepare(sql).unwrap();
    // Same cached plan object — nothing was re-parsed or re-optimized.
    assert!(std::ptr::eq(first.plan(), second.plan()));
    assert!(std::ptr::eq(
        first.optimized_plan(),
        second.optimized_plan()
    ));
    assert_eq!(db.cached_plan_count(), 1);

    // Another statement caches separately.
    db.prepare("SELECT b FROM t").unwrap();
    assert_eq!(db.cached_plan_count(), 2);

    // prepare_unoptimized bypasses the cache entirely.
    db.prepare_unoptimized(sql).unwrap();
    assert_eq!(db.cached_plan_count(), 2);

    // INSERT invalidates the entries scanning the mutated table:
    // cardinalities (and potentially groundness) changed, so cached
    // optimization choices are stale. Both cached statements scan `t`.
    let before = db.prepare(sql).unwrap().plan() as *const _;
    db.exec("INSERT INTO t VALUES (3, 4)").unwrap();
    assert_eq!(db.cached_plan_count(), 0);
    let after = db.prepare(sql).unwrap();
    assert!(!std::ptr::eq(before, after.plan()));

    // Invalidation is per-table: DDL on an unrelated table leaves the
    // cached `t` statements alone...
    db.exec("CREATE TABLE u (x NUM)").unwrap();
    assert_eq!(db.cached_plan_count(), 1);
    db.prepare("SELECT x FROM u").unwrap();
    assert_eq!(db.cached_plan_count(), 2);
    // ...and dropping `u` kills exactly the `u`-scanning entry.
    db.exec("DROP TABLE u").unwrap();
    assert_eq!(db.cached_plan_count(), 1);
    db.exec("INSERT INTO t VALUES (5, 6)").unwrap();
    assert_eq!(db.cached_plan_count(), 0);

    // register() invalidates only the registered table's entries.
    db.prepare(sql).unwrap();
    let rel: MKRel<P> = Relation::empty(Schema::new(["y"]).unwrap());
    db.register("v", rel.clone());
    assert_eq!(db.cached_plan_count(), 1);
    db.prepare("SELECT y FROM v").unwrap();
    assert_eq!(db.cached_plan_count(), 2);
    db.register("v", rel);
    assert_eq!(db.cached_plan_count(), 1);
}

#[test]
fn cached_plans_execute_correctly_after_data_changes_invalidate() {
    // The cache must never serve a plan optimized for stale data: a
    // table that was fully ground gains a symbolic row via register();
    // re-preparing the same SQL re-runs the gates against the new data.
    let mut db = ProvDb::new();
    let ground: MKRel<P> = Relation::from_rows(
        Schema::new(["k", "v"]).unwrap(),
        [(vec![Value::int(1), Value::int(5)], tok("g0"))],
    )
    .unwrap();
    db.register("t", ground.clone());
    db.exec("CREATE TABLE u (k2 NUM, w NUM); INSERT INTO u VALUES (1, 9)")
        .unwrap();

    let sql = "SELECT t.k FROM t JOIN u ON t.k = u.k2 WHERE t.v = 5";
    let out = db.prepare(sql).unwrap().execute().unwrap();
    assert_eq!(out.len(), 1);

    // Now make t.v symbolic. The cache was invalidated by register(), so
    // the new prepare must refuse the pushdown — and still agree with the
    // unoptimized plan.
    let sym = Value::agg_normalized(
        MonoidKind::Sum,
        Tensor::from_terms(&MonoidKind::Sum, [(tok("x"), Const::int(5))]),
    );
    let mixed: MKRel<P> = Relation::from_rows(
        Schema::new(["k", "v"]).unwrap(),
        [
            (vec![Value::int(1), Value::int(5)], tok("g0")),
            (vec![Value::int(1), sym], tok("g1")),
        ],
    )
    .unwrap();
    db.register("t", mixed);
    let opt = db.prepare(sql).unwrap().execute().unwrap().into_relation();
    let lit = db
        .prepare_unoptimized(sql)
        .unwrap()
        .execute()
        .unwrap()
        .into_relation();
    assert_eq!(opt, lit);
    // Both rows project onto k = 1; the merged annotation carries the
    // symbolic row's equality token.
    assert_eq!(opt.len(), 1);
    let (_, k) = opt.iter().next().unwrap();
    assert!(k.to_string().contains("=SUM="), "symbolic guard kept: {k}");
}

#[test]
fn parameterized_statements_cache_and_rebind() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE t (a NUM, b NUM);
         INSERT INTO t VALUES (1, 10); INSERT INTO t VALUES (2, 20)",
    )
    .unwrap();
    let sql = "SELECT a FROM t WHERE b = $1";
    let s1 = db.prepare(sql).unwrap();
    let s2 = db.prepare(sql).unwrap();
    assert!(std::ptr::eq(s1.plan(), s2.plan()));
    assert_eq!(s1.execute_with(&[Const::int(10)]).unwrap().len(), 1);
    assert_eq!(s2.execute_with(&[Const::int(99)]).unwrap().len(), 0);
}
