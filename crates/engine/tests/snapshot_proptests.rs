//! Snapshot isolation and plan-cache behavior under a concurrent writer.
//!
//! The serving layer's contract: readers holding a [`DbSnapshot`] of
//! epoch `E` see **bit-identical** results — support, values, every
//! annotation, at every thread count — to the literal §4.3 `specops`
//! oracle evaluated over the frozen epoch-`E` relations, no matter how
//! many new epochs a concurrent writer publishes meanwhile. The plan
//! cache is shared between the live database and its snapshots, so a
//! second battery pins the version-dependency check: an entry optimized
//! for a *newer* table state must never be served to an older epoch
//! (groundness gates differ → a stale plan could be mis-optimized, not
//! merely slow).

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::tensor::Tensor;
use aggprov_core::km::{CmpPred, Km};
use aggprov_core::ops::{AggSpec, MKRel};
use aggprov_core::{specops, ExecOptions, Value};
use aggprov_engine::{Database, DbSnapshot, ProvDb, ResultSet, SnapPrepared};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use proptest::prelude::*;

type P = Km<NatPoly>;

fn tok(name: &str) -> P {
    Km::embed(NatPoly::token(name))
}

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One generated cell, as in the PR 2–5 suites (≈1/3 symbolic). Numeric
/// or symbolic only — these columns sit under comparisons/aggregation.
type RawVal = (u8, usize, i64);

fn decode_num_val(raw: RawVal) -> Value<P> {
    let (kind, vi, n) = raw;
    if kind <= 3 {
        Value::int(n)
    } else {
        Value::agg_normalized(
            MonoidKind::Sum,
            Tensor::from_terms(&MonoidKind::Sum, [(tok(VARS[vi]), Const::int(n))]),
        )
    }
}

fn arb_rows() -> impl Strategy<Value = Vec<(RawVal, RawVal)>> {
    prop::collection::vec(
        (
            ((0u8..6), (0usize..4), (-3i64..6)),
            ((0u8..6), (0usize..4), (-3i64..6)),
        ),
        0..10,
    )
}

fn rel2(prefix: &str, rows: Vec<(RawVal, RawVal)>) -> MKRel<P> {
    Relation::from_rows(
        Schema::new(["a", "b"]).unwrap(),
        rows.into_iter().enumerate().map(|(i, (x, y))| {
            (
                vec![decode_num_val(x), decode_num_val(y)],
                tok(&format!("{prefix}{i}")),
            )
        }),
    )
    .unwrap()
}

/// The specops oracle for `SELECT a FROM r WHERE b < v` over the frozen
/// relation.
fn filter_oracle(frozen: &MKRel<P>, v: i64) -> MKRel<P> {
    let f = aggprov_core::ops::select_cmp(frozen, "b", CmpPred::Lt, &Value::int(v)).unwrap();
    specops::project(&f, &["a"]).unwrap()
}

/// The specops oracle for `SELECT a, SUM(b) AS s FROM r GROUP BY a`.
fn group_oracle(frozen: &MKRel<P>) -> MKRel<P> {
    let grouped = specops::group_by(
        frozen,
        &["a"],
        &[AggSpec {
            kind: MonoidKind::Sum,
            attr: "b",
            out: "s",
        }],
    )
    .unwrap();
    // The trailing SELECT-list projection is identity on attributes but
    // not on annotations: §4.3 projection re-runs the symbolic tuple
    // dedup, exactly as the engine's Project above the Aggregate does.
    specops::project(&grouped, &["a", "s"]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Readers on epoch `E` (at threads 1 and 4) are bit-identical to the
    /// specops oracle over the frozen relations while a writer inserts
    /// rows and publishes epoch after epoch concurrently.
    #[test]
    fn readers_match_specops_while_writer_publishes(
        rows in arb_rows(),
        v in -2i64..5,
    ) {
        let frozen = rel2("r", rows);
        let mut db = ProvDb::new();
        db.register("r", frozen.clone());

        let snap = db.snapshot();
        let epoch = snap.epoch();
        let filter_sql = format!("SELECT a FROM r WHERE b < {v}");
        let filter_stmt = snap.prepare(&filter_sql).unwrap();
        let group_stmt = snap.prepare("SELECT a, SUM(b) AS s FROM r GROUP BY a").unwrap();
        let want_filter = filter_oracle(&frozen, v);
        let want_group = group_oracle(&frozen);

        std::thread::scope(|scope| {
            // The single writer: keeps inserting ground rows, each insert
            // publishing a fresh epoch (copy-on-write away from `snap`).
            let writer = scope.spawn(|| {
                for i in 0..16 {
                    db.exec(&format!("INSERT INTO r VALUES ({i}, {i}) PROVENANCE n{i}"))
                        .unwrap();
                    std::thread::yield_now();
                }
                db
            });
            // Readers: re-execute against the frozen epoch, serial and
            // 4-way sharded, and demand the oracle bit for bit.
            let mut readers = Vec::new();
            for threads in [1usize, 4] {
                let filter_stmt = filter_stmt.clone();
                let group_stmt = group_stmt.clone();
                let (want_filter, want_group) = (want_filter.clone(), want_group.clone());
                readers.push(scope.spawn(move || {
                    let opts = ExecOptions::with_threads(threads);
                    for _ in 0..8 {
                        let got = filter_stmt.execute_with_opts(&[], &opts).unwrap();
                        assert_eq!(got.relation(), &want_filter, "filter, threads={threads}");
                        let got = group_stmt.execute_with_opts(&[], &opts).unwrap();
                        assert_eq!(got.relation(), &want_group, "group, threads={threads}");
                        std::thread::yield_now();
                    }
                }));
            }
            for r in readers {
                r.join().unwrap();
            }
            let db = writer.join().unwrap();
            // The writer published new epochs; the snapshot still serves
            // the old one, and a fresh snapshot sees the inserted rows.
            prop_assert!(db.epoch() != epoch);
            prop_assert_eq!(snap.epoch(), epoch);
            prop_assert_eq!(snap.table("r").unwrap(), &frozen);
            prop_assert_eq!(db.table("r").unwrap().len() >= frozen.len(), true);
            let refreshed = db.snapshot();
            prop_assert_eq!(refreshed.table("r").unwrap(), db.table("r").unwrap());
        });
    }

    /// The shared plan cache never serves a plan across epochs whose
    /// table versions differ: a snapshot taken while the table was fully
    /// ground keeps optimizer-gated rewrites valid for *its* data even
    /// after the live table turns symbolic (and vice versa).
    #[test]
    fn shared_cache_is_version_safe_across_epochs(
        ground_rows in arb_rows(),
        mixed_rows in arb_rows(),
        v in -2i64..5,
    ) {
        // Ground epoch: every optimizer gate opens.
        let ground: MKRel<P> = Relation::from_rows(
            Schema::new(["a", "b"]).unwrap(),
            ground_rows.iter().enumerate().map(|(i, ((_, _, x), (_, _, y)))| {
                (vec![Value::int(*x), Value::int(*y)], tok(&format!("g{i}")))
            }),
        )
        .unwrap();
        let mixed = rel2("m", mixed_rows);

        let mut db = ProvDb::new();
        db.register("r", ground.clone());
        let sql = format!("SELECT a FROM r WHERE b < {v}");

        // Cache the statement against the ground epoch, then snapshot it.
        let snap_ground = db.snapshot();
        let stmt_ground = snap_ground.prepare(&sql).unwrap();

        // The live table turns (potentially) symbolic; the live prepare
        // caches a new entry planned for the new version.
        db.register("r", mixed.clone());
        let live = db.prepare(&sql).unwrap().execute_with_opts(
            &[], &ExecOptions::serial(),
        ).unwrap();
        prop_assert_eq!(live.relation(), &filter_oracle(&mixed, v));

        // The ground snapshot — whose epoch no longer matches the cached
        // entry's versions — must still produce its own frozen answer,
        // both through the held statement and through a fresh prepare.
        let got = stmt_ground.execute_with_opts(&[], &ExecOptions::serial()).unwrap();
        prop_assert_eq!(got.relation(), &filter_oracle(&ground, v));
        let reprepared = snap_ground.prepare(&sql).unwrap();
        let got = reprepared.execute_with_opts(&[], &ExecOptions::serial()).unwrap();
        prop_assert_eq!(got.relation(), &filter_oracle(&ground, v));
    }
}

// ------------------------------------------------------------- unit tests

#[test]
fn snapshot_is_frozen_while_live_database_moves_on() {
    let mut db = ProvDb::new();
    db.exec("CREATE TABLE t (a NUM); INSERT INTO t VALUES (1) PROVENANCE p1")
        .unwrap();
    let snap = db.snapshot();
    let epoch = snap.epoch();
    assert_eq!(db.epoch(), epoch, "snapshot freezes the current epoch");

    db.exec("INSERT INTO t VALUES (2) PROVENANCE p2").unwrap();
    assert_ne!(db.epoch(), epoch, "every mutation publishes a new epoch");
    assert_eq!(snap.epoch(), epoch);
    assert_eq!(snap.table("t").unwrap().len(), 1, "snapshot is frozen");
    assert_eq!(db.table("t").unwrap().len(), 2);

    // Queries against the snapshot see the frozen support.
    let out = snap.query("SELECT a FROM t").unwrap();
    assert_eq!(out.len(), 1);
    // DDL is invisible to the snapshot too.
    db.exec("CREATE TABLE u (x NUM)").unwrap();
    assert!(snap.table("u").is_err());
    assert!(snap.query("SELECT x FROM u").is_err());
    assert_eq!(
        snap.table_names().collect::<Vec<_>>(),
        vec!["t"],
        "frozen catalog"
    );
}

#[test]
fn snap_prepared_is_owned_and_parameterized() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
         INSERT INTO r VALUES ('d2', 30) PROVENANCE p2;",
    )
    .unwrap();
    let stmt = {
        // The snapshot (and the database borrow) can die; the statement
        // lives on, owning its epoch.
        let snap = db.snapshot();
        snap.prepare("SELECT sal FROM r WHERE dept = $1").unwrap()
    };
    drop(db);
    assert_eq!(stmt.param_count(), 1);
    assert_eq!(stmt.schema().to_string(), "sal");
    let d1 = stmt.execute_with(&[Const::str("d1")]).unwrap();
    assert_eq!(d1.len(), 1);
    // Wrong arity is the usual loud error.
    assert!(stmt.execute().is_err());
}

#[test]
fn plan_cache_lru_capacity_is_enforced() {
    let mut db = ProvDb::new();
    db.exec("CREATE TABLE t (a NUM, b NUM); INSERT INTO t VALUES (1, 2)")
        .unwrap();
    db.set_plan_cache_capacity(2);
    db.prepare("SELECT a FROM t").unwrap();
    db.prepare("SELECT b FROM t").unwrap();
    assert_eq!(db.cached_plan_count(), 2);

    // Touch the first entry so the second is the LRU victim.
    db.prepare("SELECT a FROM t").unwrap();
    db.prepare("SELECT a, b FROM t").unwrap();
    assert_eq!(db.cached_plan_count(), 2, "capacity bound holds");

    // The evicted statement still prepares fine (a re-plan, not an error).
    let out = db
        .prepare("SELECT b FROM t")
        .unwrap()
        .execute()
        .unwrap()
        .into_relation();
    assert_eq!(out.len(), 1);
    assert_eq!(db.cached_plan_count(), 2);

    // Shrinking the capacity evicts immediately.
    db.set_plan_cache_capacity(1);
    assert_eq!(db.cached_plan_count(), 1);
}

#[test]
fn concurrent_snapshot_prepares_share_the_cache() {
    let mut db = ProvDb::new();
    db.exec("CREATE TABLE t (a NUM); INSERT INTO t VALUES (1)")
        .unwrap();
    let snap = db.snapshot();
    // Many reader threads prepare the same statements concurrently; the
    // cache must stay consistent and the count accurate.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let snap = snap.clone();
            scope.spawn(move || {
                for _ in 0..16 {
                    let stmt = snap.prepare("SELECT a FROM t").unwrap();
                    assert_eq!(stmt.execute().unwrap().len(), 1);
                    snap.prepare("SELECT a FROM t WHERE a = 1").unwrap();
                }
            });
        }
    });
    assert_eq!(db.cached_plan_count(), 2);
    // The live database hits the same entries (same epoch, same versions).
    db.prepare("SELECT a FROM t").unwrap();
    assert_eq!(db.cached_plan_count(), 2);
}

/// The serving layer's Send/Sync audit, enforced at compile time: every
/// handle a session holds across threads must be `Send + Sync`.
#[test]
fn serving_handles_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ProvDb>();
    assert_send_sync::<Database<aggprov_algebra::semiring::Nat>>();
    assert_send_sync::<DbSnapshot<aggprov_core::Prov>>();
    assert_send_sync::<SnapPrepared<aggprov_core::Prov>>();
    assert_send_sync::<ResultSet<aggprov_core::Prov>>();
    assert_send_sync::<ExecOptions>();
}
