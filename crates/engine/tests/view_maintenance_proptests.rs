//! Property tests for materialized-view maintenance: under interleaved
//! `INSERT` / `delete_tokens` streams, every maintained view stays
//! bit-identical to a from-scratch re-execution of its SQL (at one *and*
//! four worker threads) and — for the directly oracled shapes — to an
//! expectation built from the literal §4.3 reference kernels
//! (`specops::group_by`, manual selection).
//!
//! Four view shapes ride along:
//! - `v1` plain `GROUP BY` — incremental group-state maintenance,
//! - `v2` selection (SPJ) — incremental additive delta merge,
//! - `v3` `HAVING` — degrades to eager recomputation (still maintained),
//! - `v4` join + `GROUP BY` — incremental through the join.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::ops::AggSpec;
use aggprov_core::{specops, Value};
use aggprov_engine::{ExecOptions, MaintenanceStrategy, ProvDb};
use proptest::prelude::*;

const V1_SQL: &str = "SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept";
const V2_SQL: &str = "SELECT dept, sal FROM emp WHERE sal > 10";
const V3_SQL: &str =
    "SELECT dept, SUM(sal) AS total, COUNT(*) AS n FROM emp GROUP BY dept HAVING total > 20";
const V4_SQL: &str = "SELECT d.region, SUM(e.sal) AS mass FROM emp e \
                      JOIN dept d ON e.dept = d.dept GROUP BY d.region";

const VIEWS: [(&str, &str); 4] = [
    ("v1", V1_SQL),
    ("v2", V2_SQL),
    ("v3", V3_SQL),
    ("v4", V4_SQL),
];

#[derive(Clone, Debug)]
enum Op {
    /// `INSERT INTO emp VALUES (dept, sal) PROVENANCE p<n>`.
    Insert { dept: i64, sal: i64 },
    /// Fire a batch of already-issued `p<i>` tokens.
    DeleteTokens(Vec<usize>),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0i64..4, 0i64..40).prop_map(|(dept, sal)| Op::Insert { dept, sal }),
            (0i64..4, 0i64..40).prop_map(|(dept, sal)| Op::Insert { dept, sal }),
            (0i64..4, 0i64..40).prop_map(|(dept, sal)| Op::Insert { dept, sal }),
            prop::collection::vec(0usize..16, 1..4).prop_map(Op::DeleteTokens),
        ],
        0..12,
    )
}

fn setup() -> ProvDb {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE emp (dept NUM, sal NUM);
         CREATE TABLE dept (dept NUM, region NUM);
         INSERT INTO dept VALUES (0, 100) PROVENANCE d0;
         INSERT INTO dept VALUES (1, 100) PROVENANCE d1;
         INSERT INTO dept VALUES (2, 200) PROVENANCE d2;
         INSERT INTO dept VALUES (3, 200) PROVENANCE d3;",
    )
    .unwrap();
    for (name, sql) in VIEWS {
        db.materialize(name, sql).unwrap();
    }
    db
}

/// Every view must equal a from-scratch re-execution of its SQL, bit for
/// bit, at one and at four worker threads.
fn check_against_reexecution(db: &ProvDb) {
    for (name, sql) in VIEWS {
        let view = db.view(name).unwrap();
        let prepared = db.prepare(sql).unwrap();
        let serial = prepared
            .execute_with_opts(&[], &ExecOptions::serial())
            .unwrap()
            .into_relation();
        assert_eq!(view, &serial, "view `{name}` != serial re-execution");
        let par = prepared
            .execute_with_opts(&[], &ExecOptions::with_threads(4))
            .unwrap()
            .into_relation();
        assert_eq!(view, &par, "view `{name}` != 4-thread re-execution");
    }
}

/// The directly oracled shapes: `v1` against the literal §4.3
/// `specops::group_by` over the base table, `v2` against a hand-rolled
/// selection (annotations untouched, rows kept verbatim).
fn check_against_specops(db: &ProvDb) {
    let emp = db.table("emp").unwrap();
    let expected_v1 = specops::group_by(
        emp,
        &["dept"],
        &[AggSpec {
            kind: MonoidKind::Sum,
            attr: "sal",
            out: "total",
        }],
    )
    .unwrap();
    assert_eq!(
        db.view("v1").unwrap(),
        &expected_v1,
        "v1 != specops::group_by"
    );

    let expected_v2 = emp.select(|schema, t| {
        let i = schema.index_of("sal").unwrap();
        matches!(t.get(i), Value::Const(Const::Num(n)) if *n > 10.into())
    });
    assert_eq!(
        db.view("v2").unwrap(),
        &expected_v2,
        "v2 != literal selection"
    );
}

fn apply_ops(db: &mut ProvDb, ops: &[Op], check_each: bool) {
    let mut issued = 0usize;
    for op in ops {
        match op {
            Op::Insert { dept, sal } => {
                db.exec(&format!(
                    "INSERT INTO emp VALUES ({dept}, {sal}) PROVENANCE p{issued}"
                ))
                .unwrap();
                issued += 1;
            }
            Op::DeleteTokens(picks) => {
                if issued == 0 {
                    continue;
                }
                let tokens: Vec<String> =
                    picks.iter().map(|i| format!("p{}", i % issued)).collect();
                db.delete_tokens(tokens.iter().map(|s| s.as_str())).unwrap();
            }
        }
        if check_each {
            check_against_reexecution(db);
            check_against_specops(db);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After *every* mutation of the stream, every view equals its
    /// re-execution (both thread counts) and the oracled shapes equal
    /// their `specops` expectations.
    #[test]
    fn maintained_views_track_mutation_streams(ops in arb_ops()) {
        let mut db = setup();
        check_against_reexecution(&db);
        check_against_specops(&db);
        apply_ops(&mut db, &ops, true);
    }

    /// A snapshot taken mid-stream keeps its frozen view state while the
    /// live database keeps mutating (views are epoch state).
    #[test]
    fn snapshots_freeze_views(ops in arb_ops(), cut in 0usize..12) {
        let mut db = setup();
        let cut = cut.min(ops.len());
        apply_ops(&mut db, &ops[..cut], false);
        let snap = db.snapshot();
        let frozen: Vec<_> = VIEWS
            .iter()
            .map(|(name, _)| snap.view(name).unwrap().clone())
            .collect();
        apply_ops(&mut db, &ops[cut..], false);
        check_against_reexecution(&db);
        for ((name, _), before) in VIEWS.iter().zip(&frozen) {
            assert_eq!(snap.view(name).unwrap(), before, "snapshot view `{name}` moved");
        }
    }
}

#[test]
fn strategies_classify_as_documented() {
    let db = setup();
    for (name, strategy) in [
        ("v1", MaintenanceStrategy::Incremental),
        ("v2", MaintenanceStrategy::Incremental),
        ("v3", MaintenanceStrategy::Recompute),
        ("v4", MaintenanceStrategy::Incremental),
    ] {
        assert_eq!(
            db.view_strategy(name).unwrap(),
            strategy,
            "strategy of `{name}`"
        );
    }
}

#[test]
fn view_lifecycle_and_errors() {
    let mut db = setup();
    // Duplicate names, unknown views, parameterized views are rejected.
    assert!(db.materialize("v1", V1_SQL).is_err());
    assert!(db.view("nope").is_err());
    assert!(db
        .materialize("p", "SELECT dept FROM emp WHERE sal = $1")
        .is_err());
    assert_eq!(db.view_sql("v1").unwrap(), V1_SQL);
    assert_eq!(db.view_names().count(), 4);
    db.drop_view("v2").unwrap();
    assert!(db.view("v2").is_err());
    assert_eq!(db.view_names().count(), 3);
    // Dropping a base table breaks its dependents loudly (no stale reads);
    // unaffected views keep working.
    db.exec("DROP TABLE dept").unwrap();
    let err = db.view("v4").unwrap_err().to_string();
    assert!(err.contains("broken"), "unexpected error: {err}");
    assert!(db.view("v1").is_ok());
}

#[test]
fn register_refreshes_dependent_views() {
    let mut db = setup();
    // Replace `emp` wholesale: views re-materialize from their SQL.
    let mut other = ProvDb::new();
    other
        .exec(
            "CREATE TABLE emp (dept NUM, sal NUM);
             INSERT INTO emp VALUES (1, 30) PROVENANCE q1;
             INSERT INTO emp VALUES (2, 12) PROVENANCE q2;",
        )
        .unwrap();
    db.register("emp", other.table("emp").unwrap().clone());
    check_against_reexecution(&db);
    check_against_specops(&db);
    // And the refreshed views keep delta-maintaining afterwards.
    db.exec("INSERT INTO emp VALUES (1, 5) PROVENANCE q3")
        .unwrap();
    db.delete_tokens(["q2"]).unwrap();
    check_against_reexecution(&db);
    check_against_specops(&db);
}
