//! Columnar batches over the ground partition of a relation.
//!
//! The row-at-a-time `BTreeMap` store of [`Relation`] is the right shape
//! for the §4.3 token semantics — symbolic values force sums over the
//! whole support — but it is the wrong shape for the ground hot path,
//! where every equality token is `0`/`1` and execution degenerates to
//! classical columnar work. A [`ColumnBatch`] holds that ground partition
//! column-major: one [`TypedColumn`] per attribute (unboxed `Vec<i64>`
//! for integer runs, dictionary codes for strings, boxed `Vec<Const>` as
//! the fallback — see [`crate::typed`]) plus a dense annotation column,
//! so a filter touches only the compared columns and a projection is a
//! column remap instead of a per-tuple rebuild.
//!
//! [`GroundBatch`] pairs a `ColumnBatch` with the **symbolic fringe** — the
//! rows that hold a non-constant value somewhere — kept row-wise, exactly
//! as they came out of the relation. The split is lossless:
//! [`GroundBatch::from_relation`] followed by [`GroundBatch::into_relation`]
//! reproduces the input relation bit for bit. The vectorized kernels over
//! these batches live in `aggprov_core::ops::batch`; this module is only
//! the container and the conversion.

use crate::error::{RelError, Result};
use crate::relation::{Relation, Tuple};
use crate::schema::Schema;
use crate::typed::{ColumnLayout, IntoConsts, TypedColumn};
use aggprov_algebra::domain::Const;
use aggprov_algebra::semiring::CommutativeSemiring;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// A column-major batch of fully ground rows: `arity` parallel
/// [`TypedColumn`]s plus one dense annotation column. Row `r` is
/// `(cols[0][r], …, cols[arity-1][r])` annotated `anns[r]`.
///
/// A batch is a *bag* of rows — unlike a [`Relation`], equal rows may
/// appear more than once (a pipeline defers the additive merge to its
/// next breaker); [`GroundBatch::into_relation`] merges duplicates
/// additively, which by distributivity agrees with merging eagerly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnBatch<K> {
    cols: Vec<TypedColumn>,
    anns: Vec<K>,
}

impl<K: CommutativeSemiring> ColumnBatch<K> {
    /// An empty batch of the given arity, columns probing their variant
    /// from the data.
    pub fn new(arity: usize) -> Self {
        Self::with_capacity(arity, 0)
    }

    /// An empty batch of the given arity with row capacity pre-reserved,
    /// columns probing their variant from the data.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        Self::with_layout(arity, rows, &ColumnLayout::typed())
    }

    /// An empty batch whose columns are shaped by `layout` (forced boxed,
    /// or typed with optional catalog hints).
    pub fn with_layout(arity: usize, rows: usize, layout: &ColumnLayout) -> Self {
        ColumnBatch {
            cols: (0..arity)
                .map(|i| TypedColumn::for_layout(layout, i, rows))
                .collect(),
            anns: Vec::with_capacity(rows),
        }
    }

    /// Builds a batch from pre-assembled columns. All columns and the
    /// annotation vector must have the same length.
    pub fn from_columns(cols: Vec<TypedColumn>, anns: Vec<K>) -> Result<Self> {
        if let Some(c) = cols.iter().find(|c| c.len() != anns.len()) {
            return Err(RelError::ArityMismatch {
                expected: anns.len(),
                got: c.len(),
            });
        }
        Ok(ColumnBatch { cols, anns })
    }

    /// The number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.anns.len()
    }

    /// True iff the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.anns.is_empty()
    }

    /// One column, typed. `None` if `i` is out of range.
    pub fn col(&self, i: usize) -> Option<&TypedColumn> {
        self.cols.get(i)
    }

    /// The annotation column.
    pub fn anns(&self) -> &[K] {
        &self.anns
    }

    /// Appends one row. The row's arity must match the batch's.
    pub fn push_row(&mut self, row: &[Const], ann: K) {
        debug_assert_eq!(row.len(), self.arity());
        for (col, v) in self.cols.iter_mut().zip(row) {
            col.push(v.clone());
        }
        self.anns.push(ann);
    }

    /// Appends a whole column (e.g. the constant-1 column for COUNT/AVG),
    /// probing its variant from the values. The column must have one
    /// value per row.
    pub fn push_column(&mut self, col: Vec<Const>) -> Result<()> {
        self.push_typed_column(TypedColumn::from_consts(col))
    }

    /// Appends a pre-shaped typed column with one value per row.
    pub fn push_typed_column(&mut self, col: TypedColumn) -> Result<()> {
        if col.len() != self.len() {
            return Err(RelError::ArityMismatch {
                expected: self.len(),
                got: col.len(),
            });
        }
        self.cols.push(col);
        Ok(())
    }

    /// Decomposes the batch into its columns and annotation vector
    /// (e.g. to reorder columns wholesale through a projection view).
    pub fn into_columns(self) -> (Vec<TypedColumn>, Vec<K>) {
        (self.cols, self.anns)
    }
}

/// A relation split for vectorized execution: the fully ground rows as a
/// [`ColumnBatch`] plus the symbolic fringe as a row-wise side table, in
/// support order on both sides.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GroundBatch<K, V> {
    ground: ColumnBatch<K>,
    fringe: Vec<(Tuple<V>, K)>,
}

impl<K, V> GroundBatch<K, V>
where
    K: CommutativeSemiring,
    V: Clone + Ord + Hash + fmt::Debug,
{
    /// Splits a relation with the default probing column layout; see
    /// [`GroundBatch::from_relation_with`].
    pub fn from_relation(rel: &Relation<K, V>, as_const: impl Fn(&V) -> Option<&Const>) -> Self {
        Self::from_relation_with(rel, as_const, &ColumnLayout::typed())
    }

    /// Splits a relation: rows whose every value reads back as a constant
    /// through `as_const` fill the columnar ground batch (columns shaped
    /// by `layout`); the rest land on the row-wise fringe. Both
    /// partitions keep support order, so the split (composed with
    /// [`GroundBatch::into_relation`]) is lossless.
    pub fn from_relation_with(
        rel: &Relation<K, V>,
        as_const: impl Fn(&V) -> Option<&Const>,
        layout: &ColumnLayout,
    ) -> Self {
        let arity = rel.schema().arity();
        let mut ground = ColumnBatch::with_layout(arity, rel.len(), layout);
        let mut fringe = Vec::new();
        // One reused borrow buffer: the groundness check and the column
        // pushes share a single pass over the row's values.
        let mut row: Vec<&Const> = Vec::with_capacity(arity);
        for (t, k) in rel.iter() {
            let vals = t.values();
            row.clear();
            for v in vals {
                match as_const(v) {
                    Some(c) => row.push(c),
                    None => break,
                }
            }
            if row.len() != vals.len() {
                fringe.push((t.clone(), k.clone()));
                continue;
            }
            for (col, c) in ground.cols.iter_mut().zip(&row) {
                col.push((*c).clone());
            }
            ground.anns.push(k.clone());
        }
        GroundBatch { ground, fringe }
    }

    /// Wraps a batch produced by downstream kernels, with a fringe carried
    /// alongside (possibly empty).
    pub fn from_parts(ground: ColumnBatch<K>, fringe: Vec<(Tuple<V>, K)>) -> Self {
        GroundBatch { ground, fringe }
    }

    /// The columnar ground partition.
    pub fn ground(&self) -> &ColumnBatch<K> {
        &self.ground
    }

    /// The symbolic fringe rows, in support order.
    pub fn fringe(&self) -> &[(Tuple<V>, K)] {
        &self.fringe
    }

    /// True iff no row holds a symbolic value.
    pub fn is_all_ground(&self) -> bool {
        self.fringe.is_empty()
    }

    /// Decomposes into the ground batch and the fringe.
    pub fn into_parts(self) -> (ColumnBatch<K>, Vec<(Tuple<V>, K)>) {
        (self.ground, self.fringe)
    }

    /// Rebuilds a relation under `schema`: ground rows are lifted back
    /// through `lift` with duplicates merged **additively** (zero sums
    /// leave the support, as in [`Relation::insert`]); fringe rows merge
    /// the same way. For a batch straight out of
    /// [`GroundBatch::from_relation`] there are no duplicates and the round
    /// trip is the identity; for a kernel output, the additive merge *is*
    /// the deferred merge of the pipeline.
    pub fn into_relation(
        self,
        schema: Schema,
        lift: impl Fn(Const) -> V,
    ) -> Result<Relation<K, V>> {
        self.into_relation_selected(schema, lift, None)
    }

    /// [`GroundBatch::into_relation`] restricted to the ground rows named
    /// by an ascending selection vector (`None` = all rows). Values and
    /// annotations are **moved** out of the columns (an `Arc` bump for
    /// dictionary strings) — a pipeline's final materialization never
    /// re-clones what its kernels already built.
    pub fn into_relation_selected(
        self,
        schema: Schema,
        lift: impl Fn(Const) -> V,
        sel: Option<&[u32]>,
    ) -> Result<Relation<K, V>> {
        if self.ground.arity() != schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: schema.arity(),
                got: self.ground.arity(),
            });
        }
        let mut map: BTreeMap<Tuple<V>, K> = BTreeMap::new();
        let merge = |map: &mut BTreeMap<Tuple<V>, K>, t: Tuple<V>, k: K| {
            if k.is_zero() {
                return;
            }
            match map.entry(t) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(k);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let sum = e.get().plus(&k);
                    if sum.is_zero() {
                        e.remove();
                    } else {
                        *e.get_mut() = sum;
                    }
                }
            }
        };
        let nrows = self.ground.len();
        let mut cols: Vec<IntoConsts> = self
            .ground
            .cols
            .into_iter()
            .map(TypedColumn::into_consts)
            .collect();
        let mut anns = self.ground.anns.into_iter();
        let mut sel_iter = sel.map(|s| s.iter().copied().peekable());
        for r in 0..nrows {
            let keep = match &mut sel_iter {
                None => true,
                Some(s) => {
                    if s.peek() == Some(&(r as u32)) {
                        s.next();
                        true
                    } else {
                        false
                    }
                }
            };
            if keep {
                let row: Vec<V> = cols
                    .iter_mut()
                    .map(|c| {
                        c.next().map(&lift).ok_or_else(|| {
                            RelError::Internal("batch column shorter than its row count".into())
                        })
                    })
                    .collect::<Result<_>>()?;
                let ann = anns.next().ok_or_else(|| {
                    RelError::Internal("batch annotation column shorter than its row count".into())
                })?;
                merge(&mut map, Tuple::new(row), ann);
            } else {
                // Skipped rows are consumed (and dropped) to keep the
                // column iterators aligned.
                for c in cols.iter_mut() {
                    c.next();
                }
                anns.next();
            }
        }
        for (t, k) in self.fringe {
            merge(&mut map, t, k);
        }
        Relation::from_tuple_map(schema, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::Nat;

    fn s(names: &[&str]) -> Schema {
        Schema::new(names.iter().copied()).unwrap()
    }

    /// In these tests the value type is `Const` itself; "symbolic" is
    /// played by boolean values so the split predicate has something to
    /// reject.
    fn as_non_bool(c: &Const) -> Option<&Const> {
        match c {
            Const::Bool(_) => None,
            _ => Some(c),
        }
    }

    fn sample() -> Relation<NatPoly, Const> {
        Relation::from_rows(
            s(&["a", "b"]),
            [
                (vec![Const::int(1), Const::str("x")], NatPoly::token("p1")),
                (vec![Const::int(2), Const::Bool(true)], NatPoly::token("p2")),
                (vec![Const::int(3), Const::str("y")], NatPoly::token("p3")),
            ],
        )
        .unwrap()
    }

    #[test]
    fn split_round_trips_losslessly() {
        let rel = sample();
        let batch = GroundBatch::from_relation(&rel, as_non_bool);
        assert_eq!(batch.ground().len(), 2);
        assert_eq!(batch.fringe().len(), 1);
        // Variant detection kicked in: ints unboxed, strings encoded.
        assert_eq!(batch.ground().col(0), Some(&TypedColumn::Num(vec![1, 3])));
        assert_eq!(batch.ground().col(1).map(TypedColumn::variant), Some("str"));
        let back = batch.into_relation(rel.schema().clone(), |c| c).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn boxed_layout_round_trips_identically() {
        let rel = sample();
        let typed = GroundBatch::from_relation(&rel, as_non_bool);
        let boxed = GroundBatch::from_relation_with(&rel, as_non_bool, &ColumnLayout::boxed());
        assert_eq!(
            boxed.ground().col(0).map(TypedColumn::variant),
            Some("boxed")
        );
        assert_eq!(
            typed.ground().col(0).map(TypedColumn::to_consts),
            boxed.ground().col(0).map(TypedColumn::to_consts),
        );
        let a = typed.into_relation(rel.schema().clone(), |c| c).unwrap();
        let b = boxed.into_relation(rel.schema().clone(), |c| c).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, rel);
    }

    #[test]
    fn empty_and_all_fringe_round_trip() {
        let empty: Relation<Nat, Const> = Relation::empty(s(&["a"]));
        let b = GroundBatch::from_relation(&empty, |c| Some(c));
        assert!(b.ground().is_empty() && b.is_all_ground());
        assert_eq!(b.into_relation(s(&["a"]), |c| c).unwrap(), empty);

        let rel = Relation::from_rows(
            s(&["a"]),
            [
                (vec![Const::Bool(true)], Nat(2)),
                (vec![Const::Bool(false)], Nat(1)),
            ],
        )
        .unwrap();
        let b = GroundBatch::from_relation(&rel, as_non_bool);
        assert!(b.ground().is_empty());
        assert_eq!(b.fringe().len(), 2);
        assert_eq!(b.into_relation(s(&["a"]), |c| c).unwrap(), rel);
    }

    #[test]
    fn into_relation_merges_duplicates_additively() {
        let mut ground = ColumnBatch::new(1);
        ground.push_row(&[Const::int(1)], Nat(2));
        ground.push_row(&[Const::int(1)], Nat(3));
        ground.push_row(&[Const::int(2)], Nat(1));
        let rel = GroundBatch::<Nat, Const>::from_parts(ground, Vec::new())
            .into_relation(s(&["a"]), |c| c)
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.annotation(&Tuple::from([Const::int(1)])), Nat(5));
    }

    #[test]
    fn selected_materialization_compacts_and_moves() {
        let rel = sample();
        let batch = GroundBatch::from_relation(&rel, as_non_bool);
        // Keep only the second ground row (absolute row index 1).
        let compacted = batch
            .into_relation_selected(s(&["a", "b"]), |c| c, Some(&[1]))
            .unwrap();
        assert_eq!(compacted.len(), 2, "selected ground row + fringe row");
        assert_eq!(
            compacted.annotation(&Tuple::from([Const::int(3), Const::str("y")])),
            NatPoly::token("p3")
        );
    }

    #[test]
    fn arity_and_length_checks() {
        assert!(ColumnBatch::<Nat>::from_columns(
            vec![TypedColumn::Num(vec![1]), TypedColumn::Num(vec![])],
            vec![Nat(1)]
        )
        .is_err());
        let mut b = ColumnBatch::<Nat>::new(1);
        b.push_row(&[Const::int(1)], Nat(1));
        assert!(b.push_column(vec![]).is_err());
        assert!(b.clone().push_column(vec![Const::int(9)]).is_ok());
        let gb = GroundBatch::<Nat, Const>::from_parts(b, Vec::new());
        assert!(gb.into_relation(s(&["a", "b"]), |c| c).is_err());
    }

    #[test]
    fn zero_sums_leave_the_support() {
        use aggprov_algebra::semiring::IntZ;
        let mut ground = ColumnBatch::new(1);
        ground.push_row(&[Const::int(1)], IntZ(2));
        ground.push_row(&[Const::int(1)], IntZ(-2));
        let rel = GroundBatch::<IntZ, Const>::from_parts(ground, Vec::new())
            .into_relation(s(&["a"]), |c| c)
            .unwrap();
        assert!(rel.is_empty());
    }
}
