//! Errors raised by relational operations.

use std::fmt;

/// An error from a relational-algebra operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelError {
    /// Two relations were combined whose schemas disagree.
    SchemaMismatch {
        /// Rendering of the left schema.
        left: String,
        /// Rendering of the right schema.
        right: String,
        /// The operation that failed.
        op: &'static str,
    },
    /// An attribute name was not found in the schema.
    UnknownAttr(String),
    /// A schema was built with a duplicate attribute name.
    DuplicateAttr(String),
    /// A tuple's arity disagrees with its schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A value had the wrong type for an operation (e.g. `SUM` over text).
    TypeError(String),
    /// A query was executed with the wrong number of `$n` parameters.
    /// Raised both by the arity check before execution and by the
    /// defensive binding check inside the plan interpreter, so prepare-time
    /// and execute-time failures carry the same precise message.
    ParamArity {
        /// How many parameters the query expects.
        expected: usize,
        /// How many were supplied.
        got: usize,
    },
    /// The annotation semiring cannot express an operation (e.g. comparing
    /// symbolic aggregates without the `K^M` extension, paper §4.1).
    Unsupported(String),
    /// The input text could not be lexed or parsed. `pos` is the byte
    /// offset of the offending token (or of the end of input), so tooling
    /// can point at the exact spot; `Display` keeps the familiar
    /// `parse error: …` rendering.
    Parse {
        /// Byte offset of the offending token in the input text.
        pos: usize,
        /// What went wrong, in the parser's words.
        msg: String,
    },
    /// An internal invariant was violated on the execute path — e.g. a
    /// physical plan referenced a column its input schema does not have.
    /// Well-formed plans produced by `lower_query` never raise this; it
    /// exists so a malformed or future hand-built plan surfaces as an
    /// error instead of a panic in the middle of execution.
    Internal(String),
    /// An environment variable held a value the engine cannot use. Raised
    /// loudly (naming both the variable and the offending value) instead of
    /// silently falling back to a default — a typo in `AGGPROV_THREADS`
    /// must not quietly serialize execution.
    InvalidEnv {
        /// The environment variable.
        var: &'static str,
        /// The rejected value.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::SchemaMismatch { left, right, op } => {
                write!(f, "{op}: schema mismatch between ({left}) and ({right})")
            }
            RelError::UnknownAttr(a) => write!(f, "unknown attribute `{a}`"),
            RelError::DuplicateAttr(a) => write!(f, "duplicate attribute `{a}`"),
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            RelError::TypeError(msg) => write!(f, "type error: {msg}"),
            RelError::ParamArity { expected, got } => {
                write!(
                    f,
                    "query expects exactly {expected} parameter{} (`$n`), got {got}",
                    if *expected == 1 { "" } else { "s" }
                )
            }
            RelError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            RelError::Parse { pos, msg } => write!(f, "parse error: {msg} (at byte {pos})"),
            RelError::Internal(msg) => write!(f, "internal error: {msg}"),
            RelError::InvalidEnv {
                var,
                value,
                expected,
            } => {
                write!(f, "invalid {var}=`{value}`: expected {expected}")
            }
        }
    }
}

impl std::error::Error for RelError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RelError>;
