//! `K`-sets (paper §2.1–2.2).
//!
//! A `K`-set is a finite-support function `S : D → K` — a single-attribute
//! `K`-relation. `SetAgg` over a `K`-set of semimodule elements is the
//! primitive from which the paper's aggregation semantics is built.

use aggprov_algebra::semimodule::{set_agg, Semimodule};
use aggprov_algebra::semiring::CommutativeSemiring;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

/// A `K`-set: finitely many elements annotated with non-zero semiring
/// values.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KSet<K, V: Ord> {
    items: BTreeMap<V, K>,
}

impl<K, V> KSet<K, V>
where
    K: CommutativeSemiring,
    V: Clone + Ord + Hash + fmt::Debug,
{
    /// The empty `K`-set.
    pub fn new() -> Self {
        KSet {
            items: BTreeMap::new(),
        }
    }

    /// Builds from `(value, annotation)` pairs, summing repeats.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (V, K)>) -> Self {
        let mut out = KSet::new();
        for (v, k) in pairs {
            out.insert(v, k);
        }
        out
    }

    /// Adds `k` to the annotation of `v`.
    pub fn insert(&mut self, v: V, k: K) {
        if k.is_zero() {
            return;
        }
        match self.items.entry(v) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(k);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = e.get().plus(&k);
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// `S(v)`: the annotation (`0_K` outside the support).
    pub fn annotation(&self, v: &V) -> K {
        self.items.get(v).cloned().unwrap_or_else(K::zero)
    }

    /// Union: `(S₁ ∪ S₂)(v) = S₁(v) + S₂(v)`.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (v, k) in &other.items {
            out.insert(v.clone(), k.clone());
        }
        out
    }

    /// The support size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the support is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the support.
    pub fn iter(&self) -> impl Iterator<Item = (&V, &K)> {
        self.items.iter()
    }

    /// `SetAgg_W`: aggregates the set's elements in a `K`-semimodule whose
    /// vectors are the element type (paper §2.2).
    pub fn aggregate<W>(&self, module: &W) -> V
    where
        W: Semimodule<K, Vector = V>,
    {
        set_agg(module, self.items.iter().map(|(v, k)| (k, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::domain::Const;
    use aggprov_algebra::monoid::MonoidKind;
    use aggprov_algebra::semimodule::{BoolSemimodule, NatSemimodule};
    use aggprov_algebra::semiring::{Bool, Nat};

    #[test]
    fn bag_sum_aggregation() {
        // ℕ-set {20↦2, 10↦3}: SUM = 70 (paper §1: p1×20 + p2×10 + …).
        let s = KSet::from_pairs([(Const::int(20), Nat(2)), (Const::int(10), Nat(3))]);
        assert_eq!(s.aggregate(&NatSemimodule(MonoidKind::Sum)), Const::int(70));
    }

    #[test]
    fn set_min_aggregation() {
        let s = KSet::from_pairs([
            (Const::int(20), Bool(true)),
            (Const::int(10), Bool(true)),
            (Const::int(5), Bool(false)),
        ]);
        assert_eq!(
            s.aggregate(&BoolSemimodule::new(MonoidKind::Min)),
            Const::int(10)
        );
    }

    #[test]
    fn empty_aggregate_is_monoid_zero() {
        let s: KSet<Nat, Const> = KSet::new();
        assert_eq!(s.aggregate(&NatSemimodule(MonoidKind::Sum)), Const::int(0));
    }

    #[test]
    fn union_and_annotations() {
        let a = KSet::from_pairs([(Const::int(1), Nat(1))]);
        let b = KSet::from_pairs([(Const::int(1), Nat(2)), (Const::int(2), Nat(1))]);
        let u = a.union(&b);
        assert_eq!(u.annotation(&Const::int(1)), Nat(3));
        assert_eq!(u.len(), 2);
        assert_eq!(u.annotation(&Const::int(9)), Nat(0));
    }
}
