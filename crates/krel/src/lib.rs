//! # aggprov-krel
//!
//! `K`-relations and the positive relational algebra (SPJU) over commutative
//! semirings, following Green, Karvounarakis & Tannen (PODS 2007) — the
//! substrate on which *Provenance for Aggregate Queries* builds:
//!
//! * [`schema`], [`relation`] — named-perspective schemas, tuples, and
//!   `K`-relations with union / projection / selection / join / product /
//!   rename and homomorphism application (`h_Rel`);
//! * [`batch`] — column-major batches over the ground partition
//!   ([`ColumnBatch`], [`GroundBatch`]) with lossless `Relation ⇄ batch`
//!   conversion, the substrate of the vectorized execution pipeline;
//! * [`typed`] — the typed column storage those batches are made of
//!   ([`TypedColumn`]: unboxed `Vec<i64>` integer runs,
//!   dictionary-encoded strings, boxed fallback), with variant detection
//!   at construction time and catalog-hinted layouts ([`ColumnLayout`]);
//! * [`kset`] — `K`-sets and `SetAgg`;
//! * [`monus`] — baseline difference semantics (set/bag monus,
//!   ℤ-difference) used by the paper's §5.2 comparisons;
//! * [`mod@reference`] — an independent, annotation-free bag/set evaluator used
//!   as the differential-testing oracle for set/bag compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batch;
pub mod error;
pub mod kset;
pub mod monus;
pub mod reference;
pub mod relation;
pub mod schema;
pub mod typed;

pub use batch::{ColumnBatch, GroundBatch};
pub use error::{RelError, Result};
pub use relation::{Relation, ShardView, Tuple};
pub use schema::{Attr, Schema};
pub use typed::{ColHint, ColumnLayout, StrColumn, TypedColumn};
