//! Baseline difference semantics (paper §5.2 comparators).
//!
//! The paper compares its aggregation-derived difference against previously
//! proposed semantics:
//!
//! * **monus** difference on naturally ordered semirings (Geerts & Poggi):
//!   `(R − S)(t) = R(t) ∸ S(t)`, which specializes to set difference on `B`
//!   and bag difference on `ℕ`;
//! * **ℤ-difference** (Green, Ives & Tannen): plain subtraction, allowing
//!   negative multiplicities.
//!
//! These are the comparison points for Propositions 5.5 and 5.7.

use crate::error::{RelError, Result};
use crate::relation::Relation;
use aggprov_algebra::semiring::{Bool, CommutativeSemiring, IntZ, Nat};
use std::fmt;
use std::hash::Hash;

/// A semiring with a *monus* (truncated difference): `a ∸ b` is the least
/// `c` with `a ≤ b + c` in the natural order, when that order makes the
/// semiring a "monus semiring" (Geerts & Poggi, J. Applied Logic 2010).
pub trait Monus: CommutativeSemiring {
    /// The truncated difference `a ∸ b`.
    fn monus(&self, other: &Self) -> Self;
}

impl Monus for Nat {
    fn monus(&self, other: &Self) -> Self {
        Nat(self.0.saturating_sub(other.0))
    }
}

impl Monus for Bool {
    fn monus(&self, other: &Self) -> Self {
        Bool(self.0 && !other.0)
    }
}

/// Tuple-wise monus difference: `(R ∸ S)(t) = R(t) ∸ S(t)`.
///
/// On `B` this is set difference; on `ℕ` bag difference.
pub fn monus_difference<K, V>(r: &Relation<K, V>, s: &Relation<K, V>) -> Result<Relation<K, V>>
where
    K: Monus,
    V: Clone + Ord + Hash + fmt::Debug,
{
    if r.schema() != s.schema() {
        return Err(RelError::SchemaMismatch {
            left: r.schema().to_string(),
            right: s.schema().to_string(),
            op: "difference",
        });
    }
    let mut out = Relation::empty(r.schema().clone());
    for (t, k) in r.iter() {
        let diff = k.monus(&s.annotation(t));
        if !diff.is_zero() {
            out.insert(t.values().to_vec(), diff)?;
        }
    }
    Ok(out)
}

/// ℤ-difference: `(R − S)(t) = R(t) − S(t)` on ℤ-relations, following
/// "Reconcilable differences" (ICDT 2009). Tuples of `S` absent from `R`
/// appear with negative multiplicity.
pub fn z_difference<V>(r: &Relation<IntZ, V>, s: &Relation<IntZ, V>) -> Result<Relation<IntZ, V>>
where
    V: Clone + Ord + Hash + fmt::Debug,
{
    if r.schema() != s.schema() {
        return Err(RelError::SchemaMismatch {
            left: r.schema().to_string(),
            right: s.schema().to_string(),
            op: "difference",
        });
    }
    let neg = s.map_annotations(&mut |k| IntZ(-k.0));
    r.union(&neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use crate::schema::Schema;
    use aggprov_algebra::domain::Const;

    fn sch() -> Schema {
        Schema::new(["a"]).unwrap()
    }

    fn bag(rows: &[(i64, u64)]) -> Relation<Nat, Const> {
        Relation::from_rows(sch(), rows.iter().map(|(v, n)| ([Const::int(*v)], Nat(*n)))).unwrap()
    }

    #[test]
    fn bag_monus() {
        let r = bag(&[(1, 3), (2, 1)]);
        let s = bag(&[(1, 1), (3, 5)]);
        let d = monus_difference(&r, &s).unwrap();
        assert_eq!(d.annotation(&Tuple::from([Const::int(1)])), Nat(2));
        assert_eq!(d.annotation(&Tuple::from([Const::int(2)])), Nat(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn set_monus() {
        let mk = |vals: &[i64]| {
            Relation::from_rows(sch(), vals.iter().map(|v| ([Const::int(*v)], Bool(true)))).unwrap()
        };
        let d = monus_difference(&mk(&[1, 2]), &mk(&[2, 3])).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.annotation(&Tuple::from([Const::int(1)])), Bool(true));
    }

    #[test]
    fn z_difference_goes_negative() {
        let r = Relation::from_rows(sch(), [([Const::int(1)], IntZ(1))]).unwrap();
        let s = Relation::from_rows(
            sch(),
            [([Const::int(1)], IntZ(1)), ([Const::int(2)], IntZ(2))],
        )
        .unwrap();
        let d = z_difference(&r, &s).unwrap();
        assert_eq!(d.annotation(&Tuple::from([Const::int(1)])), IntZ(0));
        assert_eq!(d.annotation(&Tuple::from([Const::int(2)])), IntZ(-2));
        assert_eq!(d.len(), 1, "zero annotations leave the support");
    }

    #[test]
    fn z_law_a_minus_b_minus_c() {
        // (A − (B − C)) ≡ (A ∪ C) − B holds for ℤ-semantics (Prop 5.7 cite).
        let a = Relation::from_rows(sch(), [([Const::int(1)], IntZ(2))]).unwrap();
        let b = Relation::from_rows(sch(), [([Const::int(1)], IntZ(1))]).unwrap();
        let c = Relation::from_rows(sch(), [([Const::int(1)], IntZ(3))]).unwrap();
        let lhs = z_difference(&a, &z_difference(&b, &c).unwrap()).unwrap();
        let rhs = z_difference(&a.union(&c).unwrap(), &b).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bag_law_union_then_minus() {
        // (A ∪ B) ∸ B ≡ A under bag semantics (Prop 5.5 contrast).
        let a = bag(&[(1, 2)]);
        let b = bag(&[(1, 5), (2, 1)]);
        let lhs = monus_difference(&a.union(&b).unwrap(), &b).unwrap();
        assert_eq!(lhs, a);
    }
}
