//! A deliberately naive, annotation-free bag/set evaluator.
//!
//! This is the ground-truth oracle for the set/bag compatibility
//! desideratum (paper §3.1): results of the annotated semantics specialized
//! to `K = ℕ` (bags) or `K = B` (sets) must coincide with what a plain
//! evaluator computes. The implementation here shares **no code** with the
//! annotated engine — rows are literal multisets and aggregation folds the
//! monoid directly — so agreement between the two is meaningful evidence.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::{CommutativeMonoid, MonoidKind};
use std::collections::BTreeMap;

/// A plain bag (multiset) of rows with named attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BagRel {
    /// Attribute names.
    pub attrs: Vec<String>,
    /// Rows, with multiplicity given by repetition.
    pub rows: Vec<Vec<Const>>,
}

impl BagRel {
    /// Builds a bag relation.
    pub fn new(attrs: &[&str], rows: Vec<Vec<Const>>) -> Self {
        BagRel {
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            rows,
        }
    }

    fn idx(&self, attr: &str) -> usize {
        self.attrs
            .iter()
            .position(|a| a == attr)
            .unwrap_or_else(|| panic!("reference: unknown attribute {attr}"))
    }

    /// Bag union (concatenation).
    pub fn union(&self, other: &BagRel) -> BagRel {
        assert_eq!(self.attrs, other.attrs, "reference: union schema mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        BagRel {
            attrs: self.attrs.clone(),
            rows,
        }
    }

    /// Bag projection (duplicates preserved).
    pub fn project(&self, attrs: &[&str]) -> BagRel {
        let idx: Vec<usize> = attrs.iter().map(|a| self.idx(a)).collect();
        BagRel {
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| idx.iter().map(|i| r[*i].clone()).collect())
                .collect(),
        }
    }

    /// Selection.
    pub fn select(&self, pred: impl Fn(&[Const]) -> bool) -> BagRel {
        BagRel {
            attrs: self.attrs.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Selection on attribute equality with a constant.
    pub fn select_eq(&self, attr: &str, value: &Const) -> BagRel {
        let i = self.idx(attr);
        self.select(|r| &r[i] == value)
    }

    /// Natural join by nested loops.
    pub fn natural_join(&self, other: &BagRel) -> BagRel {
        let shared: Vec<&String> = self
            .attrs
            .iter()
            .filter(|a| other.attrs.contains(a))
            .collect();
        let left_idx: Vec<usize> = shared.iter().map(|a| self.idx(a)).collect();
        let right_idx: Vec<usize> = shared.iter().map(|a| other.idx(a)).collect();
        let extra_idx: Vec<usize> = (0..other.attrs.len())
            .filter(|i| !shared.iter().any(|a| *a == &other.attrs[*i]))
            .collect();

        let mut attrs = self.attrs.clone();
        attrs.extend(extra_idx.iter().map(|i| other.attrs[*i].clone()));

        let mut rows = Vec::new();
        for l in &self.rows {
            for r in &other.rows {
                if left_idx
                    .iter()
                    .zip(&right_idx)
                    .all(|(li, ri)| l[*li] == r[*ri])
                {
                    let mut row = l.clone();
                    row.extend(extra_idx.iter().map(|i| r[*i].clone()));
                    rows.push(row);
                }
            }
        }
        BagRel { attrs, rows }
    }

    /// Duplicate elimination (set semantics).
    pub fn distinct(&self) -> BagRel {
        let mut seen: Vec<Vec<Const>> = Vec::new();
        for r in &self.rows {
            if !seen.contains(r) {
                seen.push(r.clone());
            }
        }
        BagRel {
            attrs: self.attrs.clone(),
            rows: seen,
        }
    }

    /// Bag difference (multiset subtraction).
    pub fn bag_difference(&self, other: &BagRel) -> BagRel {
        assert_eq!(self.attrs, other.attrs);
        let mut budget: BTreeMap<Vec<Const>, usize> = BTreeMap::new();
        for r in &other.rows {
            *budget.entry(r.clone()).or_insert(0) += 1;
        }
        let mut rows = Vec::new();
        for r in &self.rows {
            match budget.get_mut(r) {
                Some(n) if *n > 0 => *n -= 1,
                _ => rows.push(r.clone()),
            }
        }
        BagRel {
            attrs: self.attrs.clone(),
            rows,
        }
    }

    /// Set difference on the distinct rows.
    pub fn set_difference(&self, other: &BagRel) -> BagRel {
        assert_eq!(self.attrs, other.attrs);
        let d = self.distinct();
        BagRel {
            attrs: self.attrs.clone(),
            rows: d
                .rows
                .into_iter()
                .filter(|r| !other.rows.contains(r))
                .collect(),
        }
    }

    /// Full-relation aggregation of one attribute (no grouping).
    pub fn aggregate(&self, kind: MonoidKind, attr: &str) -> Const {
        let i = self.idx(attr);
        self.rows
            .iter()
            .map(|r| r[i].clone())
            .fold(kind.zero(), |a, b| kind.plus(&a, &b))
    }

    /// `GROUP BY group_attrs` with a single aggregation `kind(agg_attr)`;
    /// output schema is `group_attrs ++ [agg_attr]`.
    pub fn group_aggregate(
        &self,
        group_attrs: &[&str],
        kind: MonoidKind,
        agg_attr: &str,
    ) -> BagRel {
        let gidx: Vec<usize> = group_attrs.iter().map(|a| self.idx(a)).collect();
        let ai = self.idx(agg_attr);
        let mut groups: BTreeMap<Vec<Const>, Const> = BTreeMap::new();
        for r in &self.rows {
            let key: Vec<Const> = gidx.iter().map(|i| r[*i].clone()).collect();
            let acc = groups.entry(key).or_insert_with(|| kind.zero());
            *acc = kind.plus(acc, &r[ai]);
        }
        let mut attrs: Vec<String> = group_attrs.iter().map(|s| s.to_string()).collect();
        attrs.push(agg_attr.to_string());
        BagRel {
            attrs,
            rows: groups
                .into_iter()
                .map(|(mut key, agg)| {
                    key.push(agg);
                    key
                })
                .collect(),
        }
    }

    /// Rows sorted, for order-insensitive comparison.
    pub fn sorted_rows(&self) -> Vec<Vec<Const>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> BagRel {
        BagRel::new(
            &["dept", "sal"],
            vec![
                vec![Const::str("d1"), Const::int(20)],
                vec![Const::str("d1"), Const::int(10)],
                vec![Const::str("d2"), Const::int(10)],
            ],
        )
    }

    #[test]
    fn group_sum() {
        let g = emp().group_aggregate(&["dept"], MonoidKind::Sum, "sal");
        assert_eq!(
            g.sorted_rows(),
            vec![
                vec![Const::str("d1"), Const::int(30)],
                vec![Const::str("d2"), Const::int(10)],
            ]
        );
    }

    #[test]
    fn join_and_project() {
        let dept = BagRel::new(
            &["dept", "head"],
            vec![vec![Const::str("d1"), Const::str("alice")]],
        );
        let j = emp().natural_join(&dept);
        assert_eq!(j.rows.len(), 2);
        let p = j.project(&["head"]);
        assert_eq!(p.rows.len(), 2, "bag projection keeps duplicates");
        assert_eq!(p.distinct().rows.len(), 1);
    }

    #[test]
    fn differences() {
        let a = BagRel::new(
            &["x"],
            vec![
                vec![Const::int(1)],
                vec![Const::int(1)],
                vec![Const::int(2)],
            ],
        );
        let b = BagRel::new(&["x"], vec![vec![Const::int(1)]]);
        assert_eq!(a.bag_difference(&b).rows.len(), 2);
        assert_eq!(a.set_difference(&b).rows, vec![vec![Const::int(2)]]);
    }

    #[test]
    fn aggregate_whole_relation() {
        assert_eq!(emp().aggregate(MonoidKind::Sum, "sal"), Const::int(40));
        assert_eq!(emp().aggregate(MonoidKind::Max, "sal"), Const::int(20));
        assert_eq!(
            BagRel::new(&["x"], vec![]).aggregate(MonoidKind::Min, "x"),
            Const::Num(aggprov_algebra::num::Num::PosInf)
        );
    }
}
