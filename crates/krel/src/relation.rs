//! `K`-relations and the positive relational algebra (paper §2.1 and
//! Appendix A, after Green, Karvounarakis & Tannen, PODS 2007).
//!
//! A `K`-relation is a function `R : D^U → K` of finite support. We store
//! the support as an ordered map from tuples to (non-zero) annotations, so
//! iteration order, equality and rendering are deterministic.
//!
//! The value type `V` is generic: plain relations use
//! [`Const`](aggprov_algebra::domain::Const); the aggregate-provenance layer
//! instantiates `V` with values that may contain tensor expressions.

use crate::error::{RelError, Result};
use crate::schema::Schema;
use aggprov_algebra::semiring::CommutativeSemiring;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A tuple of values. Cheap to clone (shared storage).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple<V>(Arc<[V]>);

impl<V: Clone> Tuple<V> {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Vec<V>>) -> Self {
        Tuple(values.into().into())
    }

    /// The values.
    pub fn values(&self) -> &[V] {
        &self.0
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at a position.
    pub fn get(&self, idx: usize) -> &V {
        &self.0[idx]
    }

    /// The restriction `t|_{U'}` to the given positions.
    pub fn project(&self, indices: &[usize]) -> Tuple<V> {
        Tuple(indices.iter().map(|i| self.0[*i].clone()).collect())
    }

    /// Concatenation (for joins/products).
    pub fn concat(&self, other: &[V]) -> Tuple<V> {
        Tuple(self.0.iter().chain(other.iter()).cloned().collect())
    }
}

impl<V: Clone, const N: usize> From<[V; N]> for Tuple<V> {
    fn from(values: [V; N]) -> Self {
        Tuple::new(values.to_vec())
    }
}

impl<V: fmt::Display> fmt::Display for Tuple<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A `K`-relation: a schema plus a finite-support map from tuples to
/// non-zero annotations.
///
/// The tuple store sits behind an [`Arc`]: cloning a relation (a plan
/// `Scan`, a rename, a set-op alignment) shares the base data, and the
/// first mutation of a shared relation copies it out — copy-on-write. A
/// prepared statement re-executed with different `$n` parameters therefore
/// never duplicates its base tables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation<K, V> {
    schema: Schema,
    tuples: Arc<BTreeMap<Tuple<V>, K>>,
}

impl<K, V> Relation<K, V>
where
    K: CommutativeSemiring,
    V: Clone + Ord + Hash + fmt::Debug,
{
    /// The empty relation `∅_K` over a schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Arc::new(BTreeMap::new()),
        }
    }

    /// Builds a relation from `(row, annotation)` pairs; repeated rows sum.
    pub fn from_rows<R>(schema: Schema, rows: impl IntoIterator<Item = (R, K)>) -> Result<Self>
    where
        R: Into<Vec<V>>,
    {
        let mut rel = Relation::empty(schema);
        for (row, k) in rows {
            rel.insert(row, k)?;
        }
        Ok(rel)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `k` to the annotation of a row (the `K`-relation update
    /// `R(t) += k`); rows whose annotation becomes `0` leave the support.
    pub fn insert(&mut self, row: impl Into<Vec<V>>, k: K) -> Result<()> {
        let row: Vec<V> = row.into();
        if row.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.add_tuple(Tuple::new(row), k);
        Ok(())
    }

    /// Adds `k` to the annotation of an existing [`Tuple`] (the same
    /// `R(t) += k` update as [`insert`](Relation::insert), without
    /// rebuilding the tuple from a row vector). Rows whose annotation
    /// becomes `0` leave the support.
    pub fn add(&mut self, t: Tuple<V>, k: K) -> Result<()> {
        if t.arity() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        self.add_tuple(t, k);
        Ok(())
    }

    /// Removes a tuple from the support entirely, returning its annotation
    /// (`None` if it was not present). This is *not* a semiring operation —
    /// semirings have no subtraction — but the primitive that lets a
    /// maintained materialization replace a stale row with its re-collapsed
    /// form.
    pub fn remove(&mut self, t: &Tuple<V>) -> Option<K> {
        if !self.tuples.contains_key(t) {
            // Avoid cloning a shared store just to remove nothing.
            return None;
        }
        Arc::make_mut(&mut self.tuples).remove(t)
    }

    fn add_tuple(&mut self, t: Tuple<V>, k: K) {
        if k.is_zero() {
            return;
        }
        // Copy-on-write: clones the store only if it is currently shared.
        match Arc::make_mut(&mut self.tuples).entry(t) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(k);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = e.get().plus(&k);
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
    }

    /// `R(t)`: the annotation of a tuple (`0_K` outside the support).
    pub fn annotation(&self, t: &Tuple<V>) -> K {
        self.tuples.get(t).cloned().unwrap_or_else(K::zero)
    }

    /// The support size `|supp(R)|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the support is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the support with annotations.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple<V>, &K)> {
        self.tuples.iter()
    }

    /// True iff the two relations share the same physical tuple store
    /// (copy-on-write diagnostics; sharing implies equal support).
    pub fn shares_tuples_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.tuples, &other.tuples)
    }

    /// True iff another handle (a snapshot, a cached plan input, a reader
    /// thread) aliases this tuple store, i.e. the next mutation through
    /// this handle will copy the store out instead of editing in place.
    ///
    /// Epoch-snapshot diagnostics for the serving layer: a freshly
    /// published epoch whose tables all report `false` proves the writer
    /// holds the only reference and mutations stay O(log n); `true` means
    /// some reader still pins the previous epoch's storage.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.tuples) > 1
    }

    /// Splits the support into `n` hash-disjoint [`ShardView`]s over the
    /// `Arc`'d tuple store — the seam for partition-parallel execution.
    ///
    /// A tuple's shard is determined solely by the hash of `key(t)` under a
    /// fixed-key hasher (see [`shard_index`] for the exact stability
    /// scope), so the same tuple lands in the same shard on every run of
    /// the same build; tuples with equal keys are
    /// never split across shards. Within a view, tuples keep support
    /// (`BTreeMap`) order, which gives downstream merges a deterministic
    /// order. The views borrow the store (`&self`), so they are `Send` +
    /// `Sync` and can be handed to scoped worker threads without cloning a
    /// single tuple.
    pub fn shard_views<H: Hash>(
        &self,
        n: usize,
        key: impl Fn(&Tuple<V>) -> H,
    ) -> Vec<ShardView<'_, K, V>> {
        let n = n.max(1);
        let mut shards: Vec<ShardView<'_, K, V>> = (0..n)
            .map(|_| ShardView {
                entries: Vec::new(),
            })
            .collect();
        for (t, k) in self.tuples.iter() {
            shards[shard_index(&key(t), n)].entries.push((t, k));
        }
        shards
    }

    /// Builds a relation directly from a map of **distinct** tuples,
    /// reusing the map as the tuple store (no per-tuple re-insertion).
    /// Zero annotations are dropped to maintain the finite-support
    /// invariant; every tuple's arity is checked against the schema.
    ///
    /// This is the merge step of partition-parallel operators: shards
    /// produce disjoint sorted runs, the caller folds them into one
    /// `BTreeMap`, and the map becomes the relation wholesale.
    pub fn from_tuple_map(schema: Schema, mut tuples: BTreeMap<Tuple<V>, K>) -> Result<Self> {
        if let Some(t) = tuples.keys().find(|t| t.arity() != schema.arity()) {
            return Err(RelError::ArityMismatch {
                expected: schema.arity(),
                got: t.arity(),
            });
        }
        tuples.retain(|_, k| !k.is_zero());
        Ok(Relation {
            schema,
            tuples: Arc::new(tuples),
        })
    }

    // ------------------------------------------------------------ algebra

    /// Union: `(R₁ ∪ R₂)(t) = R₁(t) + R₂(t)`.
    pub fn union(&self, other: &Self) -> Result<Self> {
        if self.schema != other.schema {
            return Err(RelError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema.to_string(),
                op: "union",
            });
        }
        let mut out = self.clone();
        for (t, k) in other.tuples.iter() {
            out.add_tuple(t.clone(), k.clone());
        }
        Ok(out)
    }

    /// Projection: `(Π_{U'} R)(t) = Σ { R(t') : t'|_{U'} = t }`.
    pub fn project(&self, attrs: &[&str]) -> Result<Self> {
        let indices = self.schema.indices_of(attrs)?;
        let schema = self.schema.project(attrs)?;
        let mut out = Relation::empty(schema);
        for (t, k) in self.tuples.iter() {
            out.add_tuple(t.project(&indices), k.clone());
        }
        Ok(out)
    }

    /// Selection with a boolean predicate: `(σ_P R)(t) = R(t) · P(t)` where
    /// `P(t) ∈ {0_K, 1_K}`.
    pub fn select(&self, pred: impl Fn(&Schema, &Tuple<V>) -> bool) -> Self {
        let mut out = Relation::empty(self.schema.clone());
        for (t, k) in self.tuples.iter() {
            if pred(&self.schema, t) {
                out.add_tuple(t.clone(), k.clone());
            }
        }
        out
    }

    /// Selection of tuples whose attribute equals a constant.
    pub fn select_eq(&self, attr: &str, value: &V) -> Result<Self> {
        let idx = self.schema.index_of(attr)?;
        Ok(self.select(|_, t| t.get(idx) == value))
    }

    /// Natural join: `(R₁ ⋈ R₂)(t) = R₁(t|U₁) · R₂(t|U₂)`.
    pub fn natural_join(&self, other: &Self) -> Result<Self> {
        let shared = self.schema.shared_with(&other.schema);
        let shared_names: Vec<&str> = shared.iter().map(|a| a.name()).collect();
        let left_keys = self.schema.indices_of(&shared_names)?;
        let right_keys = other.schema.indices_of(&shared_names)?;
        // Positions of the other relation's non-shared attributes.
        let right_extra: Vec<usize> = (0..other.schema.arity())
            .filter(|i| !shared_names.contains(&other.schema.attrs()[*i].name()))
            .collect();
        let schema = self.schema.join_with(&other.schema)?;

        // Hash-index the right side by its shared-key projection (build),
        // then stream the left side through it (probe).
        let mut index: HashMap<Tuple<V>, Vec<(&Tuple<V>, &K)>> = HashMap::new();
        for (t, k) in other.tuples.iter() {
            index
                .entry(t.project(&right_keys))
                .or_default()
                .push((t, k));
        }

        let mut out = Relation::empty(schema);
        for (t, k) in self.tuples.iter() {
            let key = t.project(&left_keys);
            if let Some(matches) = index.get(&key) {
                for (t2, k2) in matches {
                    let extra: Vec<V> = right_extra.iter().map(|i| t2.get(*i).clone()).collect();
                    out.add_tuple(t.concat(&extra), k.times(k2));
                }
            }
        }
        Ok(out)
    }

    /// Cartesian product (natural join with disjoint schemas).
    pub fn product(&self, other: &Self) -> Result<Self> {
        if !self.schema.shared_with(&other.schema).is_empty() {
            return Err(RelError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema.to_string(),
                op: "product (schemas must be disjoint)",
            });
        }
        self.natural_join(other)
    }

    /// Renames one attribute.
    pub fn rename(&self, from: &str, to: &str) -> Result<Self> {
        Ok(Relation {
            schema: self.schema.rename(from, to)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Replaces the whole schema in one step (a simultaneous rename of all
    /// attributes). Unlike a chain of [`Relation::rename`] calls this cannot
    /// collide with existing names, never touches the tuples (it consumes
    /// `self`, so renaming an owned relation is free), and is what
    /// positional operations (SQL set operations, SELECT output naming)
    /// want: `(ρ_{U→U'} R)(t) = R(t)` tuple-for-tuple.
    pub fn with_schema(self, schema: Schema) -> Result<Self> {
        if schema.arity() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                got: schema.arity(),
            });
        }
        Ok(Relation {
            schema,
            tuples: self.tuples,
        })
    }

    /// Applies a semiring homomorphism to every annotation (`h_Rel`),
    /// renormalizing the support. Commutation of queries with this map is
    /// the paper's Theorem 3.3 (and its §4 extension).
    pub fn map_annotations<K2: CommutativeSemiring>(
        &self,
        h: &mut impl FnMut(&K) -> K2,
    ) -> Relation<K2, V> {
        let mut out = Relation::empty(self.schema.clone());
        for (t, k) in self.tuples.iter() {
            out.add_tuple(t.clone(), h(k));
        }
        out
    }

    /// Maps tuple values (e.g. applying `h^M` inside aggregate values);
    /// colliding images merge by `+_K`.
    pub fn map_values<V2: Clone + Ord + Hash + fmt::Debug>(
        &self,
        f: &mut impl FnMut(&V) -> V2,
    ) -> Relation<K, V2> {
        let mut out = Relation::empty(self.schema.clone());
        for (t, k) in self.tuples.iter() {
            out.add_tuple(
                Tuple::new(t.values().iter().map(&mut *f).collect::<Vec<_>>()),
                k.clone(),
            );
        }
        out
    }

    /// Total annotation size under a user-supplied measure (for the
    /// overhead experiments).
    pub fn annotation_size(&self, measure: impl Fn(&K) -> usize) -> usize {
        self.tuples.values().map(measure).sum()
    }
}

/// The deterministic shard index of a key: SipHash with the standard
/// library's fixed `DefaultHasher::new()` keys, reduced modulo `n`.
/// Deterministic across runs and processes *of the same build* — unlike
/// `HashMap`'s per-process-seeded state — which is what in-process
/// parallel determinism needs. It is **not** pinned across Rust releases
/// (std reserves the right to change `DefaultHasher`'s algorithm), so a
/// future cross-node deployment must swap in an explicitly keyed hasher
/// before shipping shard assignments between binaries.
pub fn shard_index<H: Hash>(key: &H, n: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % n.max(1) as u64) as usize
}

/// A borrowed, hash-disjoint slice of a relation's support (see
/// [`Relation::shard_views`]). Entries keep support order; the view holds
/// only references into the `Arc`'d tuple store.
#[derive(Debug)]
pub struct ShardView<'a, K, V> {
    entries: Vec<(&'a Tuple<V>, &'a K)>,
}

impl<'a, K, V> ShardView<'a, K, V> {
    /// Iterates the shard's `(tuple, annotation)` entries in support order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a Tuple<V>, &'a K)> + '_ {
        self.entries.iter().copied()
    }

    /// The number of tuples in this shard.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the shard received no tuples (a legal, common state when
    /// there are fewer distinct keys than shards).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<K, V> fmt::Display for Relation<K, V>
where
    K: CommutativeSemiring,
    V: Clone + Ord + Hash + fmt::Debug + fmt::Display,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}]", self.schema)?;
        for (t, k) in self.tuples.iter() {
            writeln!(f, "  {t}  @ {k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::domain::Const;
    use aggprov_algebra::poly::NatPoly;
    use aggprov_algebra::semiring::{Bool, Nat};

    fn s(names: &[&str]) -> Schema {
        Schema::new(names.iter().copied()).unwrap()
    }

    fn figure_1a() -> Relation<NatPoly, Const> {
        // EmpId, Dept, Sal with tokens p1..p3, r1, r2 (Figure 1(a)).
        Relation::from_rows(
            s(&["emp", "dept", "sal"]),
            [
                (
                    vec![Const::int(1), Const::str("d1"), Const::int(20)],
                    NatPoly::token("p1"),
                ),
                (
                    vec![Const::int(2), Const::str("d1"), Const::int(10)],
                    NatPoly::token("p2"),
                ),
                (
                    vec![Const::int(3), Const::str("d1"), Const::int(15)],
                    NatPoly::token("p3"),
                ),
                (
                    vec![Const::int(4), Const::str("d2"), Const::int(10)],
                    NatPoly::token("r1"),
                ),
                (
                    vec![Const::int(5), Const::str("d2"), Const::int(15)],
                    NatPoly::token("r2"),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure_1_projection() {
        // Π_Dept R: d1 ↦ p1+p2+p3, d2 ↦ r1+r2 (Figure 1(b)).
        let r = figure_1a();
        let p = r.project(&["dept"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.annotation(&Tuple::from([Const::str("d1")])),
            NatPoly::token("p1")
                .plus(&NatPoly::token("p2"))
                .plus(&NatPoly::token("p3"))
        );
        assert_eq!(
            p.annotation(&Tuple::from([Const::str("d2")])),
            NatPoly::token("r1").plus(&NatPoly::token("r2"))
        );
    }

    #[test]
    fn figure_1_deletion_propagation() {
        // Setting p3 = r2 = 0 keeps both depts; also deleting r1 drops d2.
        let p = figure_1a().project(&["dept"]).unwrap();
        let del = aggprov_algebra::hom::Valuation::<NatPoly>::ones()
            .set("p3", NatPoly::zero())
            .set("r2", NatPoly::zero())
            .set("p1", NatPoly::token("p1"))
            .set("p2", NatPoly::token("p2"))
            .set("r1", NatPoly::token("r1"));
        let after = p.map_annotations(&mut |k| del.eval(k));
        assert_eq!(
            after.annotation(&Tuple::from([Const::str("d1")])),
            NatPoly::token("p1").plus(&NatPoly::token("p2"))
        );
        let del_more =
            aggprov_algebra::hom::Valuation::<NatPoly>::ones().set("r1", NatPoly::zero());
        let after2 = after.map_annotations(&mut |k| del_more.eval(k));
        assert_eq!(after2.len(), 1, "d2 deleted once r1 = r2 = 0");
    }

    #[test]
    fn union_sums_annotations() {
        let sch = s(&["a"]);
        let r1 = Relation::from_rows(sch.clone(), [([Const::int(1)], Nat(2))]).unwrap();
        let r2 = Relation::from_rows(sch, [([Const::int(1)], Nat(3))]).unwrap();
        let u = r1.union(&r2).unwrap();
        assert_eq!(u.annotation(&Tuple::from([Const::int(1)])), Nat(5));
    }

    #[test]
    fn union_requires_same_schema() {
        let r1: Relation<Nat, Const> = Relation::empty(s(&["a"]));
        let r2 = Relation::empty(s(&["b"]));
        assert!(r1.union(&r2).is_err());
    }

    #[test]
    fn join_multiplies_annotations() {
        let r = Relation::from_rows(
            s(&["a", "b"]),
            [
                (vec![Const::int(1), Const::int(10)], Nat(2)),
                (vec![Const::int(2), Const::int(20)], Nat(1)),
            ],
        )
        .unwrap();
        let q = Relation::from_rows(
            s(&["b", "c"]),
            [
                (vec![Const::int(10), Const::int(100)], Nat(3)),
                (vec![Const::int(10), Const::int(200)], Nat(1)),
            ],
        )
        .unwrap();
        let j = r.natural_join(&q).unwrap();
        assert_eq!(j.schema().to_string(), "a, b, c");
        assert_eq!(j.len(), 2);
        assert_eq!(
            j.annotation(&Tuple::from([
                Const::int(1),
                Const::int(10),
                Const::int(100)
            ])),
            Nat(6)
        );
    }

    #[test]
    fn select_keeps_annotations() {
        let r = figure_1a();
        let sel = r.select_eq("dept", &Const::str("d2")).unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(
            sel.annotation(&Tuple::from([
                Const::int(4),
                Const::str("d2"),
                Const::int(10)
            ])),
            NatPoly::token("r1")
        );
    }

    #[test]
    fn zero_annotations_leave_support() {
        let mut r: Relation<Bool, Const> = Relation::empty(s(&["a"]));
        r.insert([Const::int(1)], Bool(false)).unwrap();
        assert!(r.is_empty());
        r.insert([Const::int(1)], Bool(true)).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn product_requires_disjoint_schemas() {
        let r: Relation<Nat, Const> = Relation::empty(s(&["a"]));
        let q = Relation::empty(s(&["a", "b"]));
        assert!(r.product(&q).is_err());
    }

    #[test]
    fn insert_arity_checked() {
        let mut r: Relation<Nat, Const> = Relation::empty(s(&["a", "b"]));
        assert!(r.insert([Const::int(1)], Nat(1)).is_err());
    }

    #[test]
    fn clone_shares_storage_until_mutation() {
        let mut r = figure_1a();
        let snapshot = r.clone();
        assert!(snapshot.shares_tuples_with(&r), "clone is an Arc share");
        // Schema-level operations keep sharing (rename touches no tuples).
        let renamed = r.rename("sal", "salary").unwrap();
        assert!(renamed.shares_tuples_with(&r));
        let rel = r.clone().with_schema(s(&["a", "b", "c"])).unwrap();
        assert!(rel.shares_tuples_with(&r));
        // The first mutation copies the store out; the snapshot is intact.
        r.insert(
            [Const::int(6), Const::str("d3"), Const::int(5)],
            NatPoly::token("q1"),
        )
        .unwrap();
        assert!(!snapshot.shares_tuples_with(&r));
        assert_eq!(snapshot.len(), 5);
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn is_shared_tracks_outstanding_snapshots() {
        let mut r = figure_1a();
        assert!(!r.is_shared(), "sole handle owns its store");
        let snapshot = r.clone();
        assert!(r.is_shared());
        assert!(snapshot.is_shared());
        // The CoW insert diverges the stores: both ends become sole owners.
        r.insert(
            [Const::int(6), Const::str("d3"), Const::int(5)],
            NatPoly::token("q1"),
        )
        .unwrap();
        assert!(!r.is_shared());
        assert!(!snapshot.is_shared());
        drop(snapshot);
        assert!(!r.is_shared());
    }

    /// The serving layer hands relations and shard views across threads;
    /// keep that a compile-time guarantee.
    #[test]
    fn stores_and_views_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Relation<NatPoly, Const>>();
        assert_send_sync::<Tuple<Const>>();
        assert_send_sync::<ShardView<'static, NatPoly, Const>>();
    }

    #[test]
    fn shard_views_partition_support_deterministically() {
        let r = figure_1a();
        let shards = r.shard_views(3, |t| t.get(1).clone());
        assert_eq!(shards.iter().map(ShardView::len).sum::<usize>(), r.len());
        // Tuples with equal keys land in the same shard.
        for shard in &shards {
            for (t, _) in shard.iter() {
                let home = shard_index(&t.get(1).clone(), 3);
                assert!(shards[home].iter().any(|(t2, _)| t2 == t));
            }
        }
        // The split is a pure function of the key hash: same every time.
        let again = r.shard_views(3, |t| t.get(1).clone());
        for (a, b) in shards.iter().zip(&again) {
            assert_eq!(a.entries, b.entries);
        }
        // n = 1 degenerates to the whole support, in order.
        let whole = r.shard_views(1, |t| t.clone());
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].len(), r.len());
        // More shards than keys leaves some empty — a legal state.
        let many = r.shard_views(64, |t| t.clone());
        assert!(many.iter().any(ShardView::is_empty));
        assert_eq!(many.iter().map(ShardView::len).sum::<usize>(), r.len());
    }

    #[test]
    fn from_tuple_map_wraps_without_reinsertion() {
        let r = figure_1a();
        let map: BTreeMap<_, _> = r.iter().map(|(t, k)| (t.clone(), k.clone())).collect();
        let rebuilt = Relation::from_tuple_map(r.schema().clone(), map).unwrap();
        assert_eq!(rebuilt, r);
        // Zero annotations are dropped; arity mismatches are errors.
        let mut map = BTreeMap::new();
        map.insert(Tuple::from([Const::int(1)]), Nat(0));
        map.insert(Tuple::from([Const::int(2)]), Nat(3));
        let rel = Relation::from_tuple_map(s(&["a"]), map).unwrap();
        assert_eq!(rel.len(), 1);
        let mut bad = BTreeMap::new();
        bad.insert(Tuple::from([Const::int(1), Const::int(2)]), Nat(1));
        assert!(Relation::from_tuple_map(s(&["a"]), bad).is_err());
    }

    #[test]
    fn map_values_merges_collisions() {
        let r = Relation::from_rows(
            s(&["a"]),
            [([Const::int(1)], Nat(2)), ([Const::int(2)], Nat(3))],
        )
        .unwrap();
        let merged = r.map_values(&mut |_| Const::int(0));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged.annotation(&Tuple::from([Const::int(0)])), Nat(5));
    }
}
