//! Relation schemas (named perspective, paper §2.1).
//!
//! The paper uses the named perspective of the relational model: a tuple is
//! a function from a finite attribute set `U` to the domain. We keep
//! attributes ordered for deterministic storage and rendering, but all
//! operations address attributes by name.

use crate::error::{RelError, Result};
use std::fmt;
use std::sync::Arc;

/// An attribute name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Creates an attribute name.
    pub fn new(name: &str) -> Self {
        Attr(Arc::from(name))
    }

    /// The name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Attr {
        Attr::new(s)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered list of distinct attribute names.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Schema {
    attrs: Arc<[Attr]>,
}

impl Schema {
    /// Builds a schema; fails on duplicate names.
    pub fn new<I, A>(attrs: I) -> Result<Schema>
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        let attrs: Vec<Attr> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(RelError::DuplicateAttr(a.name().to_string()));
            }
        }
        Ok(Schema {
            attrs: attrs.into(),
        })
    }

    /// The attributes, in order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// The number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The position of an attribute.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| RelError::UnknownAttr(name.to_string()))
    }

    /// True iff the schema contains the attribute.
    pub fn contains(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name() == name)
    }

    /// The positions of several attributes, in the given order.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// The sub-schema for the given attributes (projection `Π_{U'}`).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let idx = self.indices_of(names)?;
        Schema::new(idx.iter().map(|i| self.attrs[*i].clone()))
    }

    /// The attributes shared with another schema (join attributes).
    pub fn shared_with(&self, other: &Schema) -> Vec<Attr> {
        self.attrs
            .iter()
            .filter(|a| other.contains(a.name()))
            .cloned()
            .collect()
    }

    /// The schema of a natural join: this schema followed by the other's
    /// non-shared attributes.
    pub fn join_with(&self, other: &Schema) -> Result<Schema> {
        let mut attrs: Vec<Attr> = self.attrs.to_vec();
        for a in other.attrs.iter() {
            if !self.contains(a.name()) {
                attrs.push(a.clone());
            }
        }
        Schema::new(attrs)
    }

    /// Renames one attribute.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema> {
        let idx = self.index_of(from)?;
        let mut attrs = self.attrs.to_vec();
        attrs[idx] = Attr::new(to);
        Schema::new(attrs)
    }

    /// Appends attributes (for cartesian product); fails on collisions.
    pub fn concat(&self, other: &Schema) -> Result<Schema> {
        Schema::new(self.attrs.iter().chain(other.attrs.iter()).cloned())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_duplicates() {
        assert!(Schema::new(["a", "b"]).is_ok());
        assert_eq!(
            Schema::new(["a", "a"]),
            Err(RelError::DuplicateAttr("a".into()))
        );
    }

    #[test]
    fn lookup() {
        let s = Schema::new(["dept", "sal"]).unwrap();
        assert_eq!(s.index_of("sal").unwrap(), 1);
        assert!(s.index_of("nope").is_err());
        assert!(s.contains("dept"));
        assert_eq!(s.arity(), 2);
    }

    #[test]
    fn project_and_rename() {
        let s = Schema::new(["emp", "dept", "sal"]).unwrap();
        let p = s.project(&["sal", "dept"]).unwrap();
        assert_eq!(p.to_string(), "sal, dept");
        let r = s.rename("sal", "salary").unwrap();
        assert_eq!(r.to_string(), "emp, dept, salary");
        assert!(s.rename("nope", "x").is_err());
    }

    #[test]
    fn join_schema() {
        let a = Schema::new(["x", "y"]).unwrap();
        let b = Schema::new(["y", "z"]).unwrap();
        assert_eq!(a.join_with(&b).unwrap().to_string(), "x, y, z");
        assert_eq!(a.shared_with(&b), vec![Attr::new("y")]);
        assert!(a.concat(&b).is_err(), "product needs disjoint attrs");
    }
}
