//! Typed unboxed column storage for the ground partition.
//!
//! A boxed `Vec<Const>` column pays an enum discriminant and (for
//! rationals) a numerator/denominator pair per cell, so the batch kernels
//! in `aggprov_core::ops::batch` spend their time chasing representation
//! instead of comparing values. This module specializes the storage:
//!
//! * [`TypedColumn::Num`] — an all-integer column as an unboxed
//!   `Vec<i64>` (every value satisfies `Num::as_int`), so a filter
//!   comparison is a single machine compare and rustc can autovectorize
//!   the loop;
//! * [`TypedColumn::Str`] — an all-string column as dictionary codes
//!   ([`StrColumn`]: `Vec<u32>` codes plus an interned `Arc<str>`
//!   dictionary), so equality is a `u32` compare and a join probe is an
//!   integer table lookup;
//! * [`TypedColumn::Boxed`] — the fallback `Vec<Const>` for mixed-type
//!   columns, booleans, non-integer rationals, and `±∞`.
//!
//! The variant is detected at construction time by [`TypedColumn::push`]:
//! a column starts in the probing `Num` state (or the variant named by a
//! catalog [`ColHint`], pinned at `phys::lower` time), adopts the variant
//! of its first value, and **demotes** itself to `Boxed` — re-boxing the
//! prefix once — the moment a value arrives that the current variant
//! cannot hold. Hints are advisory: a mispinned hint costs one demotion,
//! never an error. Demotion is one-way, so a column changes
//! representation at most twice and construction stays linear.
//!
//! Round trips are exact: `Num` re-materializes through [`Const::int`]
//! and `Rational` is kept in lowest terms, so the `i64 → Const` lift
//! reproduces the input bit for bit; `Str` re-materializes by cloning the
//! interned `Arc<str>` out of the dictionary.
//!
//! Equality on [`TypedColumn`] (and [`StrColumn`]) is **representational**:
//! the same values held as `Num(vec![1])` and `Boxed(vec![Const::int(1)])`
//! compare unequal, as do equal string columns whose dictionaries differ
//! (e.g. after a [`StrColumn::gather`], which shares the parent
//! dictionary). Compare decoded values ([`TypedColumn::to_consts`]) for
//! semantic equality.

use aggprov_algebra::domain::Const;
use std::collections::HashMap;
use std::sync::Arc;

/// A catalog-supplied per-column type hint, mapped from declared
/// `CREATE TABLE` types at `phys::lower` time. Booleans and untyped
/// columns carry no hint and probe from the data instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColHint {
    /// Declared numeric: start the column in the unboxed `Vec<i64>` state.
    Num,
    /// Declared text: start the column dictionary-encoded.
    Str,
}

/// Construction-time layout for a batch: either force every column boxed
/// (the `AGGPROV_TYPED=0` debug/baseline mode) or probe per column,
/// optionally seeded with catalog hints.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ColumnLayout {
    boxed: bool,
    hints: Vec<Option<ColHint>>,
}

impl ColumnLayout {
    /// Typed columns, variant probed from the data (the default).
    pub fn typed() -> Self {
        ColumnLayout::default()
    }

    /// Every column forced to the boxed `Vec<Const>` fallback.
    pub fn boxed() -> Self {
        ColumnLayout {
            boxed: true,
            hints: Vec::new(),
        }
    }

    /// Typed columns seeded with per-column catalog hints (`None` entries
    /// probe from the data).
    pub fn with_hints(hints: Vec<Option<ColHint>>) -> Self {
        ColumnLayout {
            boxed: false,
            hints,
        }
    }

    /// True iff every column is forced boxed.
    pub fn is_boxed(&self) -> bool {
        self.boxed
    }

    /// The hint for column `col`, if any.
    pub fn hint(&self, col: usize) -> Option<ColHint> {
        if self.boxed {
            None
        } else {
            self.hints.get(col).copied().flatten()
        }
    }
}

/// A dictionary-encoded string column: one `u32` code per row plus the
/// interned dictionary it indexes. The side `index` map makes interning
/// and literal lookup O(1); it always mirrors `dict`.
///
/// A gathered column ([`StrColumn::gather`]) shares its parent's
/// dictionary wholesale (`Arc` bumps, no re-interning), so a dictionary
/// may be a superset of the values actually present in `codes`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StrColumn {
    codes: Vec<u32>,
    dict: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl StrColumn {
    /// An empty column.
    pub fn new() -> Self {
        StrColumn::default()
    }

    /// An empty column with row capacity pre-reserved.
    pub fn with_capacity(rows: usize) -> Self {
        StrColumn {
            codes: Vec::with_capacity(rows),
            dict: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Interns `s` (if new) and appends its code. Returns `false`,
    /// leaving the column unchanged, iff the `u32` code space is
    /// exhausted — the caller then demotes to boxed storage.
    pub fn push(&mut self, s: &Arc<str>) -> bool {
        if let Some(&code) = self.index.get(s.as_ref()) {
            self.codes.push(code);
            return true;
        }
        let Ok(code) = u32::try_from(self.dict.len()) else {
            return false;
        };
        self.dict.push(Arc::clone(s));
        self.index.insert(Arc::clone(s), code);
        self.codes.push(code);
        true
    }

    /// The per-row codes, dense.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The dictionary, indexed by code.
    pub fn dict(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// The code interned for `s`, if `s` appears in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string a code stands for.
    pub fn decode(&self, code: u32) -> Option<&Arc<str>> {
        self.dict.get(code as usize)
    }

    /// The string at row `r`.
    pub fn get(&self, r: usize) -> Option<&Arc<str>> {
        self.decode(*self.codes.get(r)?)
    }

    /// Gathers the named rows into a new column **sharing this
    /// dictionary** (no re-interning). `None` if any row is out of range.
    pub fn gather(&self, rows: &[u32]) -> Option<StrColumn> {
        let mut codes = Vec::with_capacity(rows.len());
        for &r in rows {
            codes.push(*self.codes.get(r as usize)?);
        }
        Some(StrColumn {
            codes,
            dict: self.dict.clone(),
            index: self.index.clone(),
        })
    }
}

/// One typed column of a ground batch. See the module docs for the
/// variant-detection and demotion discipline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypedColumn {
    /// Every value is an integer in `i64` range, stored unboxed.
    Num(Vec<i64>),
    /// Every value is a string, dictionary-encoded.
    Str(StrColumn),
    /// The fallback: values kept boxed, one `Const` per row.
    Boxed(Vec<Const>),
}

impl TypedColumn {
    /// An empty column shaped for `layout`'s column `col`. Unhinted typed
    /// columns start in the probing `Num` state and adopt the variant of
    /// their first value.
    pub fn for_layout(layout: &ColumnLayout, col: usize, rows: usize) -> TypedColumn {
        if layout.is_boxed() {
            return TypedColumn::Boxed(Vec::with_capacity(rows));
        }
        match layout.hint(col) {
            Some(ColHint::Str) => TypedColumn::Str(StrColumn::with_capacity(rows)),
            Some(ColHint::Num) | None => TypedColumn::Num(Vec::with_capacity(rows)),
        }
    }

    /// Builds a column from boxed values by probing (variant detection
    /// with demotion, as in [`TypedColumn::push`]).
    pub fn from_consts(vals: Vec<Const>) -> TypedColumn {
        let mut col = TypedColumn::Num(Vec::with_capacity(vals.len()));
        for c in vals {
            col.push(c);
        }
        col
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        match self {
            TypedColumn::Num(v) => v.len(),
            TypedColumn::Str(sc) => sc.len(),
            TypedColumn::Boxed(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The variant name, for diagnostics and tests.
    pub fn variant(&self) -> &'static str {
        match self {
            TypedColumn::Num(_) => "num",
            TypedColumn::Str(_) => "str",
            TypedColumn::Boxed(_) => "boxed",
        }
    }

    /// Appends one value, demoting the representation if it cannot hold
    /// it (see the module docs). Never fails.
    pub fn push(&mut self, c: Const) {
        match self {
            TypedColumn::Num(v) => {
                if let Const::Num(n) = &c {
                    if let Some(i) = n.as_int() {
                        v.push(i);
                        return;
                    }
                }
                if v.is_empty() {
                    // Probing state with no prefix: adopt the variant of
                    // this first value instead of demoting.
                    if let Const::Str(s) = &c {
                        let mut sc = StrColumn::with_capacity(v.capacity());
                        if sc.push(s) {
                            *self = TypedColumn::Str(sc);
                            return;
                        }
                    }
                    *self = TypedColumn::Boxed(Vec::with_capacity(v.capacity()));
                } else {
                    let boxed: Vec<Const> = v.iter().map(|&i| Const::int(i)).collect();
                    *self = TypedColumn::Boxed(boxed);
                }
                self.push(c);
            }
            TypedColumn::Str(sc) => {
                if let Const::Str(s) = &c {
                    if sc.push(s) {
                        return;
                    }
                }
                // Type mismatch (or dictionary overflow): re-box the
                // prefix. Codes come from `push`, so decoding the prefix
                // cannot fail; `filter_map` keeps the lint-checked path
                // panic-free all the same.
                let boxed: Vec<Const> = sc
                    .codes()
                    .iter()
                    .filter_map(|&code| sc.decode(code).map(|s| Const::Str(Arc::clone(s))))
                    .collect();
                debug_assert_eq!(boxed.len(), sc.len());
                *self = TypedColumn::Boxed(boxed);
                self.push(c);
            }
            TypedColumn::Boxed(v) => v.push(c),
        }
    }

    /// The value at row `r`, re-materialized as a `Const` (an `Arc` bump
    /// for strings, a fresh integer `Num` for unboxed values).
    pub fn get(&self, r: usize) -> Option<Const> {
        match self {
            TypedColumn::Num(v) => v.get(r).map(|&i| Const::int(i)),
            TypedColumn::Str(sc) => sc.get(r).map(|s| Const::Str(Arc::clone(s))),
            TypedColumn::Boxed(v) => v.get(r).cloned(),
        }
    }

    /// Gathers the named rows into a new column of the same variant.
    /// `None` if any row is out of range.
    pub fn gather(&self, rows: &[u32]) -> Option<TypedColumn> {
        match self {
            TypedColumn::Num(v) => {
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    out.push(*v.get(r as usize)?);
                }
                Some(TypedColumn::Num(out))
            }
            TypedColumn::Str(sc) => sc.gather(rows).map(TypedColumn::Str),
            TypedColumn::Boxed(v) => {
                let mut out = Vec::with_capacity(rows.len());
                for &r in rows {
                    out.push(v.get(r as usize)?.clone());
                }
                Some(TypedColumn::Boxed(out))
            }
        }
    }

    /// Re-materializes every row as a boxed value (for semantic
    /// comparisons and slow paths).
    pub fn to_consts(&self) -> Vec<Const> {
        match self {
            TypedColumn::Num(v) => v.iter().map(|&i| Const::int(i)).collect(),
            TypedColumn::Str(sc) => sc
                .codes()
                .iter()
                .filter_map(|&code| sc.decode(code).map(|s| Const::Str(Arc::clone(s))))
                .collect(),
            TypedColumn::Boxed(v) => v.clone(),
        }
    }

    /// A consuming iterator of re-materialized values, in row order. A
    /// corrupt dictionary code ends the iteration early; callers that
    /// track expected lengths surface that as an internal error.
    pub fn into_consts(self) -> IntoConsts {
        IntoConsts {
            inner: match self {
                TypedColumn::Num(v) => ConstsInner::Num(v.into_iter()),
                TypedColumn::Str(sc) => ConstsInner::Str {
                    codes: sc.codes.into_iter(),
                    dict: sc.dict,
                },
                TypedColumn::Boxed(v) => ConstsInner::Boxed(v.into_iter()),
            },
        }
    }
}

/// Consuming iterator over a [`TypedColumn`], yielding boxed values in
/// row order. Boxed values are moved, not cloned.
#[derive(Debug)]
pub struct IntoConsts {
    inner: ConstsInner,
}

#[derive(Debug)]
enum ConstsInner {
    Num(std::vec::IntoIter<i64>),
    Str {
        codes: std::vec::IntoIter<u32>,
        dict: Vec<Arc<str>>,
    },
    Boxed(std::vec::IntoIter<Const>),
}

impl Iterator for IntoConsts {
    type Item = Const;

    fn next(&mut self) -> Option<Const> {
        match &mut self.inner {
            ConstsInner::Num(it) => it.next().map(Const::int),
            ConstsInner::Str { codes, dict } => {
                let code = codes.next()?;
                dict.get(code as usize).map(|s| Const::Str(Arc::clone(s)))
            }
            ConstsInner::Boxed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            ConstsInner::Num(it) => it.size_hint(),
            ConstsInner::Str { codes, .. } => codes.size_hint(),
            ConstsInner::Boxed(it) => it.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggprov_algebra::num::Num;

    #[test]
    fn probes_num_and_round_trips() {
        let vals = vec![Const::int(3), Const::int(-7), Const::int(0)];
        let col = TypedColumn::from_consts(vals.clone());
        assert_eq!(col, TypedColumn::Num(vec![3, -7, 0]));
        assert_eq!(col.to_consts(), vals);
        assert_eq!(col.get(1), Some(Const::int(-7)));
        assert_eq!(col.into_consts().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn probes_str_and_dictionary_encodes() {
        let vals = vec![Const::str("a"), Const::str("b"), Const::str("a")];
        let col = TypedColumn::from_consts(vals.clone());
        let TypedColumn::Str(sc) = &col else {
            panic!("expected Str, got {}", col.variant());
        };
        assert_eq!(sc.codes(), &[0, 1, 0]);
        assert_eq!(sc.dict().len(), 2);
        assert_eq!(sc.code_of("b"), Some(1));
        assert_eq!(sc.code_of("c"), None);
        assert_eq!(col.to_consts(), vals);
        assert_eq!(col.into_consts().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn mixed_types_demote_to_boxed() {
        // Num prefix, then a string: prefix re-boxed exactly.
        let vals = vec![Const::int(1), Const::str("x"), Const::Bool(true)];
        let col = TypedColumn::from_consts(vals.clone());
        assert_eq!(col.variant(), "boxed");
        assert_eq!(col.to_consts(), vals);

        // Str prefix, then a number.
        let vals = vec![Const::str("x"), Const::str("x"), Const::int(1)];
        let col = TypedColumn::from_consts(vals.clone());
        assert_eq!(col.variant(), "boxed");
        assert_eq!(col.to_consts(), vals);
    }

    #[test]
    fn non_integer_numerics_stay_boxed() {
        // Rationals with denominators and ±∞ do not fit `Vec<i64>`.
        let vals = vec![Const::Num(Num::ratio(1, 2)), Const::Num(Num::PosInf)];
        let col = TypedColumn::from_consts(vals.clone());
        assert_eq!(col.variant(), "boxed");
        assert_eq!(col.to_consts(), vals);

        // A bool as first value adopts Boxed from the probing state.
        let col = TypedColumn::from_consts(vec![Const::Bool(false)]);
        assert_eq!(col.variant(), "boxed");
    }

    #[test]
    fn layout_controls_initial_variant() {
        let boxed = ColumnLayout::boxed();
        let mut col = TypedColumn::for_layout(&boxed, 0, 4);
        col.push(Const::int(1));
        assert_eq!(col, TypedColumn::Boxed(vec![Const::int(1)]));

        let hinted = ColumnLayout::with_hints(vec![Some(ColHint::Str), None]);
        let col = TypedColumn::for_layout(&hinted, 0, 4);
        assert_eq!(col.variant(), "str");
        let col = TypedColumn::for_layout(&hinted, 1, 4);
        assert_eq!(col.variant(), "num");

        // A mispinned hint demotes instead of failing.
        let mut col = TypedColumn::for_layout(&hinted, 0, 4);
        col.push(Const::str("s"));
        col.push(Const::int(9));
        assert_eq!(col.to_consts(), vec![Const::str("s"), Const::int(9)]);
    }

    #[test]
    fn gather_shares_the_dictionary() {
        let col = TypedColumn::from_consts(vec![
            Const::str("a"),
            Const::str("b"),
            Const::str("c"),
            Const::str("b"),
        ]);
        let g = col.gather(&[3, 1, 0]).unwrap();
        let TypedColumn::Str(sc) = &g else {
            panic!("gather changed variant");
        };
        assert_eq!(sc.dict().len(), 3, "dictionary shared, not re-interned");
        assert_eq!(
            g.to_consts(),
            vec![Const::str("b"), Const::str("b"), Const::str("a")]
        );
        assert_eq!(col.gather(&[4]), None, "out of range");

        let n = TypedColumn::Num(vec![10, 20, 30]);
        assert_eq!(n.gather(&[2, 0]), Some(TypedColumn::Num(vec![30, 10])));
    }
}
