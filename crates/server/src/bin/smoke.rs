//! End-to-end smoke test against a **running** server (CI drives this
//! against the release binary): seeds a table, queries it from three
//! concurrent clients, interrogates provenance over the wire, and shuts
//! the server down.
//!
//! ```text
//! smoke ADDR
//! ```
//!
//! Exits 0 iff every step (including the shutdown handshake) succeeds.

use aggprov_server::{Client, Json};
use std::process::ExitCode;

fn run(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut admin = Client::connect(addr)?;
    admin.ping()?;
    admin.sql(
        "CREATE TABLE emp (dept TEXT, sal NUM);
         INSERT INTO emp VALUES ('d1', 20) PROVENANCE p1;
         INSERT INTO emp VALUES ('d1', 10) PROVENANCE p2;
         INSERT INTO emp VALUES ('d2', 15) PROVENANCE p3;",
    )?;
    admin.refresh()?;

    // A bad statement is an error response, not a dead connection.
    assert!(admin.sql("SELEKT nonsense").is_err());
    admin.ping()?;

    // Three clients, each preparing and executing against its own
    // pinned snapshot.
    let mut handles = Vec::new();
    for _ in 0..3 {
        handles.push(std::thread::spawn({
            let addr = addr.to_string();
            move || -> Result<String, String> {
                let mut c = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
                let stmt = c
                    .prepare("SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept")
                    .map_err(|e| e.to_string())?;
                let out = c.execute(stmt, vec![]).map_err(|e| e.to_string())?;
                Ok(out.get("rows").map(Json::to_string).unwrap_or_default())
            }
        }));
    }
    let mut renders = Vec::new();
    for h in handles {
        renders.push(h.join().map_err(|_| "client thread panicked")??);
    }
    assert!(
        renders
            .iter()
            .zip(renders.iter().skip(1))
            .all(|(a, b)| a == b),
        "clients disagreed: {renders:?}"
    );

    // Provenance interrogation over the wire: store, then delete p2.
    let stored = admin.request(Json::obj([
        ("op", Json::str("query")),
        (
            "sql",
            Json::str("SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept"),
        ),
        ("store", Json::Bool(true)),
    ]))?;
    let result = stored
        .get("result")
        .and_then(Json::as_int)
        .ok_or("no result handle")?;
    let valuated = admin.valuate(result, &[("p2", 0)], None)?;
    assert_eq!(
        valuated.get("collapsed"),
        Some(&Json::Bool(true)),
        "ground valuation must collapse"
    );
    admin.delete_tokens(result, &["p2"], false)?;
    admin.close_result(result)?;

    admin.shutdown()?;
    Ok(())
}

fn main() -> ExitCode {
    let Some(addr) = std::env::args().nth(1) else {
        eprintln!("usage: smoke ADDR");
        return ExitCode::FAILURE;
    };
    match run(&addr) {
        Ok(()) => {
            println!("smoke: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("smoke failed: {e}");
            ExitCode::FAILURE
        }
    }
}
