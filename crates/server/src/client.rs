//! A small blocking client for the wire protocol, used by the REPL's
//! `\connect` mode, the saturation benchmark, the smoke binary and the
//! integration tests.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client. One request in flight at a time.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: i64,
}

/// A client-side protocol failure: transport errors, or a well-formed
/// `{"ok":false}` response (the server-reported message is carried).
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError(format!("i/o: {e}"))
    }
}

/// Client-call result.
pub type Result<T> = std::result::Result<T, ClientError>;

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request object (an `id` is added) and reads the
    /// response. Error responses (`"ok": false`) become `Err`, so callers
    /// can `?` their way through a protocol script.
    pub fn request(&mut self, mut req: Json) -> Result<Json> {
        let id = self.next_id;
        self.next_id += 1;
        if let Json::Obj(map) = &mut req {
            map.insert("id".into(), Json::Int(id));
        }
        writeln!(self.writer, "{req}")?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError("server closed the connection".into()));
            }
            if !line.trim().is_empty() {
                break;
            }
        }
        let response =
            Json::parse(line.trim()).map_err(|e| ClientError(format!("bad response: {e}")))?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown server error");
            Err(ClientError(message.to_string()))
        }
    }

    /// `ping`, returning the session's pinned epoch.
    pub fn ping(&mut self) -> Result<i64> {
        let r = self.request(Json::obj([("op", Json::str("ping"))]))?;
        Ok(r.get("epoch").and_then(Json::as_int).unwrap_or(0))
    }

    /// Runs a SQL script on the live database (the write path).
    pub fn sql(&mut self, script: &str) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("sql")),
            ("sql", Json::str(script)),
        ]))
    }

    /// Re-pins the session snapshot to the newest epoch.
    pub fn refresh(&mut self) -> Result<Json> {
        self.request(Json::obj([("op", Json::str("refresh"))]))
    }

    /// One-shot query against the pinned snapshot.
    pub fn query(&mut self, sql: &str) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("query")),
            ("sql", Json::str(sql)),
        ]))
    }

    /// Prepares a statement, returning its handle.
    pub fn prepare(&mut self, sql: &str) -> Result<i64> {
        let r = self.request(Json::obj([
            ("op", Json::str("prepare")),
            ("sql", Json::str(sql)),
        ]))?;
        r.get("stmt")
            .and_then(Json::as_int)
            .ok_or_else(|| ClientError("prepare: no stmt handle in response".into()))
    }

    /// Executes a prepared statement with positional args.
    pub fn execute(&mut self, stmt: i64, args: Vec<Json>) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("execute")),
            ("stmt", Json::Int(stmt)),
            ("args", Json::Arr(args)),
        ]))
    }

    /// Lists the snapshot's tables.
    pub fn tables(&mut self) -> Result<Vec<String>> {
        let r = self.request(Json::obj([("op", Json::str("tables"))]))?;
        Ok(r.get("tables")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|t| t.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Materializes a view on the live database, returning the server's
    /// chosen maintenance strategy (`"incremental"` or `"recompute"`).
    pub fn materialize(&mut self, name: &str, sql: &str) -> Result<String> {
        let r = self.request(Json::obj([
            ("op", Json::str("materialize")),
            ("name", Json::str(name)),
            ("sql", Json::str(sql)),
        ]))?;
        Ok(r.get("strategy")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string())
    }

    /// Reads a maintained view from the pinned snapshot.
    pub fn view(&mut self, name: &str) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("view")),
            ("name", Json::str(name)),
        ]))
    }

    /// Lists the snapshot's materialized views.
    pub fn views(&mut self) -> Result<Vec<String>> {
        let r = self.request(Json::obj([("op", Json::str("views"))]))?;
        Ok(r.get("views")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|t| t.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Drops a materialized view on the live database.
    pub fn drop_view(&mut self, name: &str) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("drop_view")),
            ("name", Json::str(name)),
        ]))
    }

    /// Database-level deletion propagation: zeroes the tokens in every
    /// base table and maintains every materialized view.
    pub fn db_delete_tokens(&mut self, tokens: &[&str]) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("db_delete_tokens")),
            (
                "tokens",
                Json::Arr(tokens.iter().map(|t| Json::str(*t)).collect()),
            ),
        ]))
    }

    /// Valuates a stored result: `bindings` maps provenance tokens to
    /// naturals (unbound tokens take `default`, or 1 when `None`).
    pub fn valuate(
        &mut self,
        result: i64,
        bindings: &[(&str, i64)],
        default: Option<i64>,
    ) -> Result<Json> {
        let mut req = vec![
            ("op", Json::str("valuate")),
            ("result", Json::Int(result)),
            (
                "bindings",
                Json::Obj(
                    bindings
                        .iter()
                        .map(|(t, v)| (t.to_string(), Json::Int(*v)))
                        .collect(),
                ),
            ),
        ];
        if let Some(d) = default {
            req.push(("default", Json::Int(d)));
        }
        self.request(Json::obj(req))
    }

    /// Deletion propagation on a stored result: zeroes the given tokens,
    /// keeps the rest symbolic. `store` parks the shrunken result under
    /// a fresh handle.
    pub fn delete_tokens(&mut self, result: i64, tokens: &[&str], store: bool) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("delete_tokens")),
            ("result", Json::Int(result)),
            (
                "tokens",
                Json::Arr(tokens.iter().map(|t| Json::str(*t)).collect()),
            ),
            ("store", Json::Bool(store)),
        ]))
    }

    /// Security reading of a stored result (paper Example 3.5): `levels`
    /// maps tokens to clearance levels, `cred` is the principal's
    /// credential.
    pub fn clearance(&mut self, result: i64, cred: &str, levels: &[(&str, &str)]) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("clearance")),
            ("result", Json::Int(result)),
            ("cred", Json::str(cred)),
            (
                "levels",
                Json::Obj(
                    levels
                        .iter()
                        .map(|(t, l)| (t.to_string(), Json::str(*l)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Releases a stored result handle.
    pub fn close_result(&mut self, result: i64) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("close")),
            ("result", Json::Int(result)),
        ]))
    }

    /// Releases a prepared-statement handle.
    pub fn close_stmt(&mut self, stmt: i64) -> Result<Json> {
        self.request(Json::obj([
            ("op", Json::str("close")),
            ("stmt", Json::Int(stmt)),
        ]))
    }

    /// Says goodbye: the server acknowledges and closes this connection.
    pub fn bye(&mut self) -> Result<()> {
        self.request(Json::obj([("op", Json::str("bye"))]))?;
        Ok(())
    }

    /// Asks the server to stop (drains and exits).
    pub fn shutdown(&mut self) -> Result<()> {
        self.request(Json::obj([("op", Json::str("shutdown"))]))?;
        Ok(())
    }
}
