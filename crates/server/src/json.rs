//! A minimal JSON value, parser and writer for the wire protocol.
//!
//! The build environment is offline (no serde), and the protocol only
//! needs scalars, arrays and string-keyed objects, so this is a small
//! hand-rolled recursive-descent parser over one line of input plus an
//! escaping writer. Integers are kept exact (`i64`) and separate from
//! floats so statement parameters round-trip without loss.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed as an exact integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an exact integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Parses one JSON value from the full input (trailing garbage is an
    /// error — the protocol sends exactly one value per line).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = self.bytes.get(self.pos..).unwrap_or(&[]);
            let Some(&b) = rest.first() else {
                return Err("unterminated string".into());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: 😀 etc.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| h.strip_prefix("\\u"))
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("unpaired surrogate")?;
                                self.pos += 6;
                                let joined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(joined).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(code).ok_or("bad \\u code point")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape '\\{}'", esc as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar, however many bytes long.
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or(&[]);
        let text = std::str::from_utf8(digits).map_err(|_| "invalid number")?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("invalid number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "123456789012345"] {
            assert_eq!(Json::parse(text).unwrap().to_string(), text);
        }
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a \"b\"\n\tc \\ d");
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::str("é😀")
        );
    }

    #[test]
    fn nested_values_round_trip() {
        let text = r#"{"args":[1,"x",true,null],"id":7,"op":"execute"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("execute"));
        assert_eq!(v.get("id").and_then(Json::as_int), Some(7));
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn garbage_is_rejected() {
        for text in ["", "{", "[1,", "\"abc", "1 2", "{'a':1}", "nul"] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }
}
