//! The serving layer: a multi-client TCP server over one provenance
//! database, built on the engine's epoch snapshots.
//!
//! # Wire protocol
//!
//! Newline-delimited JSON: one request object per line in, one response
//! object per line out, over a plain TCP stream. Requests carry an `op`
//! and an optional `id` (echoed back verbatim); responses carry
//! `"ok": true` plus op-specific fields, or `"ok": false` with an
//! `error` string. A failed request never closes the connection and
//! never takes the server down.
//!
//! ```text
//! → {"id":1,"op":"sql","sql":"CREATE TABLE r (d TEXT, s NUM); INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;"}
//! ← {"epoch":42,"id":1,"ok":true}
//! → {"id":2,"op":"refresh"}
//! ← {"epoch":42,"id":2,"invalidated":[],"ok":true}
//! → {"id":3,"op":"query","sql":"SELECT d, SUM(s) AS total FROM r GROUP BY d"}
//! ← {"columns":["d","total"],"count":1,"id":3,"ok":true,"rows":[{"annotation":"δ(p1)","values":["d1","SUM⟨(p1)⊗20⟩"]}]}
//! ```
//!
//! ## Session lifecycle
//!
//! Each connection is a session. At connect time the session pins a
//! [`DbSnapshot`](aggprov_engine::DbSnapshot) of the current epoch; every
//! read op (`prepare`, `execute`, `query`, `tables`, and the provenance
//! interrogation ops) runs against that frozen epoch with **no lock
//! held**, so readers never block each other or the writer. The `sql` op
//! is the write path: it takes the single write lock, mutates
//! copy-on-write, and atomically publishes the next epoch — existing
//! snapshots are untouched. A session observes newer epochs only when it
//! asks to, via `refresh` (which also re-prepares its held statements and
//! reports any that no longer plan). Statement and result handles are
//! session-scoped integers; dropping the connection drops them all.
//!
//! ## Ops
//!
//! | op | fields | effect |
//! |----|--------|--------|
//! | `ping` | | liveness + pinned epoch |
//! | `tables` | | table names in the snapshot |
//! | `sql` | `sql` | run a SQL script on the live database |
//! | `refresh` | | re-pin to the newest epoch |
//! | `prepare` | `sql` | plan once → `stmt` handle |
//! | `execute` | `stmt`, `args?`, `store?` | run a prepared statement |
//! | `query` | `sql`, `args?`, `store?` | one-shot prepare + execute |
//! | `valuate` | `result`, `bindings?`, `default?` | ℕ-valuate a stored result |
//! | `delete_tokens` | `result`, `tokens`, `store?` | deletion propagation |
//! | `clearance` | `result`, `levels?`, `default_level?`, `cred` | security view |
//! | `close` | `stmt` \| `result` | drop a handle |
//! | `bye` | | close the connection |
//! | `shutdown` | | stop the server (drain + exit) |
//!
//! `"store": true` on `execute`/`query`/`delete_tokens` parks the
//! **symbolic** result under a `result` handle, so the paper's "evaluate
//! once, interrogate many times" workflow works over the wire: the
//! interrogation ops re-read the stored annotations without ever
//! re-running the query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod client;
pub mod json;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use json::Json;
pub use server::{Server, ShutdownHandle};
pub use session::Session;
