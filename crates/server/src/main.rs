//! The `aggprov-server` binary: serves one provenance database over TCP.
//!
//! ```text
//! aggprov-server [ADDR] [--init FILE]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7878`; `--init FILE` runs a SQL script
//! into the database before serving (tables survive for every client).

use aggprov_engine::ProvDb;
use aggprov_server::Server;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7878");
    let mut init: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--init" => match args.next() {
                Some(path) => init = Some(path),
                None => {
                    eprintln!("--init needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: aggprov-server [ADDR] [--init FILE]");
                return ExitCode::SUCCESS;
            }
            other => addr = other.to_string(),
        }
    }

    let mut db = ProvDb::new();
    if let Some(path) = init {
        let script = match std::fs::read_to_string(&path) {
            Ok(script) => script,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = db.exec(&script) {
            eprintln!("init script failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("loaded {path}: {} table(s)", db.table_names().count());
    }

    let server = match Server::bind_with(&addr, db) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("aggprov-server listening on {bound}"),
        Err(_) => eprintln!("aggprov-server listening on {addr}"),
    }
    match server.serve() {
        Ok(()) => {
            eprintln!("aggprov-server: drained, bye");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}
