//! The TCP accept loop: thread-per-connection sessions over one shared
//! database, with a graceful shutdown path.
//!
//! Concurrency model (the epoch-snapshot contract):
//!
//! - each connection pins a [`DbSnapshot`](aggprov_engine::DbSnapshot)
//!   at session start — readers prepare and execute entirely against
//!   that frozen epoch, **lock-free**;
//! - the only lock is a [`RwLock`] around the live database whose read
//!   critical section is a single `Arc` bump (`snapshot()`), and whose
//!   write section is the single writer's copy-on-write mutation;
//! - `shutdown` flips a flag, wakes the blocking accept loop with a
//!   self-connection, shuts down every open socket (readers see EOF),
//!   and joins all session threads before returning.

use crate::session::{Control, Session};
use aggprov_engine::ProvDb;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// A running server bound to a local address.
pub struct Server {
    listener: TcpListener,
    db: Arc<RwLock<ProvDb>>,
    stop: Arc<AtomicBool>,
    /// Live connection sockets, shut down on stop so blocked readers
    /// wake with EOF instead of hanging the drain.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.listener.local_addr().ok())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick) over a fresh
    /// provenance database.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        Server::bind_with(addr, ProvDb::new())
    }

    /// Binds to `addr` over a pre-loaded database.
    pub fn bind_with(addr: impl ToSocketAddrs, db: ProvDb) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            db: Arc::new(RwLock::new(db)),
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The bound address (for port-0 binds).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.listener.local_addr().ok(),
            conns: Arc::clone(&self.conns),
        }
    }

    /// Serves until `shutdown` (an op or a [`ShutdownHandle`]) stops the
    /// loop, then drains: no new connections, open sockets shut down,
    /// all session threads joined.
    pub fn serve(self) -> std::io::Result<()> {
        let shutdown = self.shutdown_handle();
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(stream) => stream,
                // A refused/reset handshake is the peer's problem.
                Err(_) => continue,
            };
            if let Ok(clone) = stream.try_clone() {
                self.conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(clone);
            }
            let db = Arc::clone(&self.db);
            let shutdown = shutdown.clone();
            sessions.push(std::thread::spawn(move || {
                serve_connection(stream, db, shutdown);
            }));
            sessions.retain(|handle| !handle.is_finished());
        }
        shutdown.stop();
        for handle in sessions {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Stops a [`Server`] from outside its accept loop.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: Option<std::net::SocketAddr>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ShutdownHandle {
    /// Flips the stop flag, wakes the accept loop, and unblocks every
    /// open session socket. Idempotent.
    pub fn stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `incoming()`; a throwaway connection
        // wakes it so it can observe the flag.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    /// True once `stop` has been requested.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// One connection's loop: read a line, handle, write a line. Request
/// failures become error responses; I/O failures close the connection;
/// nothing here can take the process down.
fn serve_connection(stream: TcpStream, db: Arc<RwLock<ProvDb>>, shutdown: ShutdownHandle) {
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut session = Session::new(db);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, control) = session.handle_line(&line);
        if writeln!(writer, "{response}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
        match control {
            Control::Continue => {}
            Control::Close => break,
            Control::Shutdown => {
                shutdown.stop();
                break;
            }
        }
    }
    let _ = writer.shutdown(std::net::Shutdown::Both);
}
