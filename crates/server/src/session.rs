//! One client's session: a pinned epoch snapshot, prepared-statement and
//! result handles, and the op dispatcher.
//!
//! Every read op (`prepare`, `execute`, `query`, and the provenance
//! interrogation ops) runs against the session's pinned [`DbSnapshot`] —
//! a frozen epoch the writer can never disturb — so execution takes no
//! lock at all. Only `sql` (the write path) takes the database write
//! lock, and `refresh` briefly takes the read lock to pin the newest
//! epoch. Handles are plain integers scoped to the session; closing the
//! connection drops everything.

use crate::json::Json;
use aggprov_algebra::domain::Const;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::semiring::{CommutativeSemiring, Nat, Security};
use aggprov_core::{Prov, Value};
use aggprov_engine::{
    DbSnapshot, MaintenanceStrategy, ParseAnnotation, ProvDb, ResultSet, SnapPrepared,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, RwLock};

/// What the connection loop should do after a response is sent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Control {
    /// Keep reading requests.
    Continue,
    /// Close this connection (client said goodbye).
    Close,
    /// Stop the whole server (drain, then exit).
    Shutdown,
}

/// Per-session handle budget: statements and stored results each.
/// A session trying to hoard more gets an error, not an OOM.
pub const MAX_HANDLES: usize = 1024;

/// One connected client's state.
pub struct Session {
    db: Arc<RwLock<ProvDb>>,
    snap: DbSnapshot<Prov>,
    stmts: HashMap<i64, (String, SnapPrepared<Prov>)>,
    results: HashMap<i64, ResultSet<Prov>>,
    next_handle: i64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("epoch", &self.snap.epoch())
            .field("stmts", &self.stmts.len())
            .field("results", &self.results.len())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Opens a session, pinning the database's current epoch.
    ///
    /// Lock poisoning is deliberately shrugged off everywhere in this
    /// module: a panicking writer must not brick the server, and every
    /// published epoch is a consistent database (mutations validate
    /// before they publish), so recovering the inner value is safe.
    pub fn new(db: Arc<RwLock<ProvDb>>) -> Session {
        let snap = db
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .snapshot();
        Session {
            db,
            snap,
            stmts: HashMap::new(),
            results: HashMap::new(),
            next_handle: 1,
        }
    }

    /// Handles one request line, returning the response and what the
    /// connection should do next. Never panics on bad input: every
    /// failure becomes an `{"ok":false,"error":…}` response so one
    /// misbehaving request can't take the connection (or the process)
    /// down.
    pub fn handle_line(&mut self, line: &str) -> (Json, Control) {
        let req = match Json::parse(line) {
            Ok(req) => req,
            Err(e) => {
                return (
                    error_response(Json::Null, &format!("bad json: {e}")),
                    Control::Continue,
                )
            }
        };
        let id = req.get("id").cloned().unwrap_or(Json::Null);
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return (error_response(id, "missing \"op\""), Control::Continue),
        };
        match self.dispatch(&op, &req) {
            Ok((mut body, control)) => {
                if let Json::Obj(map) = &mut body {
                    map.insert("id".into(), id);
                    map.insert("ok".into(), Json::Bool(true));
                }
                (body, control)
            }
            Err(e) => (error_response(id, &e), Control::Continue),
        }
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> Result<(Json, Control), String> {
        match op {
            "ping" => Ok((
                Json::obj([
                    ("pong", Json::Bool(true)),
                    ("epoch", Json::Int(self.snap.epoch() as i64)),
                ]),
                Control::Continue,
            )),
            "tables" => {
                let tables = self.snap.table_names().map(Json::str).collect::<Vec<_>>();
                Ok((
                    Json::obj([
                        ("tables", Json::Arr(tables)),
                        ("epoch", Json::Int(self.snap.epoch() as i64)),
                    ]),
                    Control::Continue,
                ))
            }
            "views" => {
                let views = self.snap.view_names().map(Json::str).collect::<Vec<_>>();
                Ok((
                    Json::obj([
                        ("views", Json::Arr(views)),
                        ("epoch", Json::Int(self.snap.epoch() as i64)),
                    ]),
                    Control::Continue,
                ))
            }
            "sql" => self.op_sql(req),
            "materialize" => self.op_materialize(req),
            "view" => self.op_view(req),
            "drop_view" => self.op_drop_view(req),
            "db_delete_tokens" => self.op_db_delete_tokens(req),
            "refresh" => self.op_refresh(),
            "prepare" => self.op_prepare(req),
            "execute" => self.op_execute(req),
            "query" => self.op_query(req),
            "valuate" => self.op_valuate(req),
            "delete_tokens" => self.op_delete_tokens(req),
            "clearance" => self.op_clearance(req),
            "close" => self.op_close(req),
            "bye" => Ok((Json::obj([]), Control::Close)),
            "shutdown" => Ok((Json::obj([]), Control::Shutdown)),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// The write path: executes a SQL script on the **live** database
    /// under the write lock. The session's snapshot stays pinned — call
    /// `refresh` to observe the new epoch.
    fn op_sql(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let script = req
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("sql: missing \"sql\"")?;
        let mut db = self
            .db
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let out = db.exec(script).map_err(|e| e.to_string())?;
        let mut body = vec![("epoch", Json::Int(db.epoch() as i64))];
        drop(db);
        if let Some(rel) = out {
            let rendered = render_relation_body(&ResultSet::from_relation(rel));
            body.extend(rendered);
        }
        Ok((Json::obj(body), Control::Continue))
    }

    /// Materializes a view on the **live** database under the write lock:
    /// the SQL is evaluated once and the annotated result is retained and
    /// delta-maintained from then on. Like `sql`, the session's own
    /// snapshot stays pinned — `refresh` to observe the view.
    fn op_materialize(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("name")
            .and_then(Json::as_str)
            .ok_or("materialize: missing \"name\"")?;
        let sql = req
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("materialize: missing \"sql\"")?;
        let mut db = self
            .db
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        db.materialize(name, sql).map_err(|e| e.to_string())?;
        let strategy = db.view_strategy(name).map_err(|e| e.to_string())?;
        let epoch = db.epoch();
        drop(db);
        Ok((
            Json::obj([
                ("epoch", Json::Int(epoch as i64)),
                ("strategy", Json::str(strategy_name(strategy))),
            ]),
            Control::Continue,
        ))
    }

    /// Reads a maintained view from the session's **pinned snapshot** —
    /// no lock, no re-evaluation; the rows are whatever the view held
    /// when this epoch was published. `"store": true` parks the view's
    /// annotated relation under a result handle so the provenance
    /// interrogation ops (`valuate`, `delete_tokens`, `clearance`) can
    /// run against it.
    fn op_view(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("name")
            .and_then(Json::as_str)
            .ok_or("view: missing \"name\"")?;
        let rel = self.snap.view(name).map_err(|e| e.to_string())?.clone();
        let strategy = self.snap.view_strategy(name).map_err(|e| e.to_string())?;
        let out = ResultSet::from_relation(rel);
        let mut body = render_relation_body(&out);
        body.push(("strategy", Json::str(strategy_name(strategy))));
        body.push(("epoch", Json::Int(self.snap.epoch() as i64)));
        if req.get("store").and_then(Json::as_bool) == Some(true) {
            if self.results.len() >= MAX_HANDLES {
                return Err(format!("store: session holds {MAX_HANDLES} results"));
            }
            let handle = self.next_handle;
            self.next_handle += 1;
            self.results.insert(handle, out);
            body.push(("result", Json::Int(handle)));
        }
        Ok((Json::obj(body), Control::Continue))
    }

    /// Drops a materialized view on the live database.
    fn op_drop_view(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let name = req
            .get("name")
            .and_then(Json::as_str)
            .ok_or("drop_view: missing \"name\"")?;
        let mut db = self
            .db
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        db.drop_view(name).map_err(|e| e.to_string())?;
        let epoch = db.epoch();
        drop(db);
        Ok((
            Json::obj([("epoch", Json::Int(epoch as i64))]),
            Control::Continue,
        ))
    }

    /// Database-level deletion propagation: zeroes the tokens in every
    /// base table and delta-propagates into every materialized view, on
    /// the **live** database under the write lock. (Contrast with
    /// `delete_tokens`, which rewrites one stored result and leaves the
    /// database alone.)
    fn op_db_delete_tokens(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let tokens = req
            .get("tokens")
            .and_then(Json::as_arr)
            .ok_or("db_delete_tokens: missing \"tokens\" array")?;
        let names: Vec<&str> = tokens
            .iter()
            .map(|t| t.as_str().ok_or("db_delete_tokens: tokens must be strings"))
            .collect::<Result<_, _>>()?;
        let mut db = self
            .db
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        db.delete_tokens(names).map_err(|e| e.to_string())?;
        let epoch = db.epoch();
        drop(db);
        Ok((
            Json::obj([("epoch", Json::Int(epoch as i64))]),
            Control::Continue,
        ))
    }

    /// Re-pins the session to the newest published epoch and re-prepares
    /// every held statement against it. Statements whose SQL no longer
    /// plans (a dropped table, say) are closed and reported.
    fn op_refresh(&mut self) -> Result<(Json, Control), String> {
        self.snap = self
            .db
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .snapshot();
        let mut invalidated = Vec::new();
        let handles: Vec<i64> = self.stmts.keys().copied().collect();
        for handle in handles {
            let Some((sql, _)) = self.stmts.get(&handle) else {
                continue;
            };
            let sql = sql.clone();
            match self.snap.prepare(&sql) {
                Ok(stmt) => {
                    self.stmts.insert(handle, (sql, stmt));
                }
                Err(_) => {
                    self.stmts.remove(&handle);
                    invalidated.push(Json::Int(handle));
                }
            }
        }
        Ok((
            Json::obj([
                ("epoch", Json::Int(self.snap.epoch() as i64)),
                ("invalidated", Json::Arr(invalidated)),
            ]),
            Control::Continue,
        ))
    }

    fn op_prepare(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let sql = req
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("prepare: missing \"sql\"")?;
        if self.stmts.len() >= MAX_HANDLES {
            return Err(format!("prepare: session holds {MAX_HANDLES} statements"));
        }
        let stmt = self.snap.prepare(sql).map_err(|e| e.to_string())?;
        let handle = self.next_handle;
        self.next_handle += 1;
        let columns = schema_columns(stmt.schema());
        let body = Json::obj([
            ("stmt", Json::Int(handle)),
            ("params", Json::Int(stmt.param_count() as i64)),
            ("columns", columns),
            ("epoch", Json::Int(stmt.epoch() as i64)),
        ]);
        self.stmts.insert(handle, (sql.to_string(), stmt));
        Ok((body, Control::Continue))
    }

    fn op_execute(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let handle = req
            .get("stmt")
            .and_then(Json::as_int)
            .ok_or("execute: missing \"stmt\"")?;
        let (_, stmt) = self
            .stmts
            .get(&handle)
            .ok_or_else(|| format!("execute: unknown stmt {handle}"))?;
        let params = parse_params(req.get("args"))?;
        let out = stmt.execute_with(&params).map_err(|e| e.to_string())?;
        self.respond_with_result(req, out)
    }

    /// One-shot prepare + execute against the pinned snapshot, without
    /// taking a statement handle.
    fn op_query(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let sql = req
            .get("sql")
            .and_then(Json::as_str)
            .ok_or("query: missing \"sql\"")?;
        let stmt = self.snap.prepare(sql).map_err(|e| e.to_string())?;
        let params = parse_params(req.get("args"))?;
        let out = stmt.execute_with(&params).map_err(|e| e.to_string())?;
        self.respond_with_result(req, out)
    }

    /// Renders an execution result; `"store": true` additionally parks
    /// the `ResultSet` under a result handle for later interrogation.
    fn respond_with_result(
        &mut self,
        req: &Json,
        out: ResultSet<Prov>,
    ) -> Result<(Json, Control), String> {
        let mut body = render_relation_body(&out);
        if req.get("store").and_then(Json::as_bool) == Some(true) {
            if self.results.len() >= MAX_HANDLES {
                return Err(format!("store: session holds {MAX_HANDLES} results"));
            }
            let handle = self.next_handle;
            self.next_handle += 1;
            self.results.insert(handle, out);
            body.push(("result", Json::Int(handle)));
        }
        Ok((Json::obj(body), Control::Continue))
    }

    fn stored(&self, req: &Json, op: &str) -> Result<&ResultSet<Prov>, String> {
        let handle = req
            .get("result")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("{op}: missing \"result\""))?;
        self.results
            .get(&handle)
            .ok_or_else(|| format!("{op}: unknown result {handle}"))
    }

    /// Token valuation into ℕ (deletion propagation, bag multiplicities):
    /// `bindings` maps token names to naturals, everything else gets
    /// `default` (1 when omitted). This interrogates the **stored**
    /// symbolic result — the query is not re-evaluated.
    fn op_valuate(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let out = self.stored(req, "valuate")?;
        let default = match req.get("default") {
            None => Nat(1),
            Some(v) => Nat(nat_binding(v, "default")?),
        };
        let mut val = Valuation::<Nat>::with_default(default);
        if let Some(bindings) = req.get("bindings") {
            let map = bindings
                .as_obj()
                .ok_or("valuate: \"bindings\" must be an object")?;
            for (token, v) in map {
                val = val.set(token.as_str(), Nat(nat_binding(v, token)?));
            }
        }
        let valuated = out.valuate(&val);
        render_km_result(&valuated)
    }

    /// Deletion propagation: zeroes the given tokens, keeps the rest
    /// symbolic. `"store": true` parks the shrunken (still symbolic)
    /// result under a fresh handle so interrogation can continue.
    fn op_delete_tokens(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let out = self.stored(req, "delete_tokens")?;
        let tokens = req
            .get("tokens")
            .and_then(Json::as_arr)
            .ok_or("delete_tokens: missing \"tokens\" array")?;
        let names: Vec<&str> = tokens
            .iter()
            .map(|t| t.as_str().ok_or("delete_tokens: tokens must be strings"))
            .collect::<Result<_, _>>()?;
        let deleted = out.delete_tokens(names);
        let mut body = render_relation_body(&deleted);
        if req.get("store").and_then(Json::as_bool) == Some(true) {
            if self.results.len() >= MAX_HANDLES {
                return Err(format!("store: session holds {MAX_HANDLES} results"));
            }
            let handle = self.next_handle;
            self.next_handle += 1;
            self.results.insert(handle, deleted);
            body.push(("result", Json::Int(handle)));
        }
        Ok((Json::obj(body), Control::Continue))
    }

    /// Security reading (paper Example 3.5): `levels` maps tokens to
    /// clearance levels (`PUBLIC`/`C`/`S`/`T`/`NEVER`), `cred` is the
    /// principal's credential; tuples and aggregate contributions visible
    /// at that clearance survive, the rest vanish.
    fn op_clearance(&mut self, req: &Json) -> Result<(Json, Control), String> {
        let out = self.stored(req, "clearance")?;
        let cred = req
            .get("cred")
            .and_then(Json::as_str)
            .ok_or("clearance: missing \"cred\"")?;
        let cred = parse_level(cred)?;
        let default = match req.get("default_level").and_then(Json::as_str) {
            None => Security::Public,
            Some(text) => parse_level(text)?,
        };
        let mut val = Valuation::<Security>::with_default(default);
        if let Some(levels) = req.get("levels") {
            let map = levels
                .as_obj()
                .ok_or("clearance: \"levels\" must be an object")?;
            for (token, v) in map {
                let text = v
                    .as_str()
                    .ok_or_else(|| format!("clearance: level for {token:?} must be a string"))?;
                val = val.set(token.as_str(), parse_level(text)?);
            }
        }
        let view = out.valuate(&val).clearance(cred);
        render_km_result(&view)
    }

    fn op_close(&mut self, req: &Json) -> Result<(Json, Control), String> {
        if let Some(handle) = req.get("stmt").and_then(Json::as_int) {
            self.stmts
                .remove(&handle)
                .ok_or_else(|| format!("close: unknown stmt {handle}"))?;
            return Ok((Json::obj([]), Control::Continue));
        }
        if let Some(handle) = req.get("result").and_then(Json::as_int) {
            self.results
                .remove(&handle)
                .ok_or_else(|| format!("close: unknown result {handle}"))?;
            return Ok((Json::obj([]), Control::Continue));
        }
        Err("close: pass \"stmt\" or \"result\"".into())
    }
}

/// Wire rendering of a view's maintenance strategy.
fn strategy_name(strategy: MaintenanceStrategy) -> &'static str {
    match strategy {
        MaintenanceStrategy::Incremental => "incremental",
        MaintenanceStrategy::Recompute => "recompute",
    }
}

fn error_response(id: Json, message: &str) -> Json {
    Json::obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
}

fn parse_level(text: &str) -> Result<Security, String> {
    <Security as ParseAnnotation>::parse_annotation(text)
        .ok_or_else(|| format!("unknown security level {text:?}"))
}

fn nat_binding(v: &Json, token: &str) -> Result<u64, String> {
    v.as_int()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("binding for {token:?} must be a non-negative integer"))
}

/// Typed JSON statement parameters → SQL constants.
fn parse_params(args: Option<&Json>) -> Result<Vec<Const>, String> {
    let Some(args) = args else {
        return Ok(Vec::new());
    };
    let items = args.as_arr().ok_or("\"args\" must be an array")?;
    items
        .iter()
        .map(|v| match v {
            Json::Int(n) => Ok(Const::int(*n)),
            Json::Str(s) => Ok(Const::str(s)),
            Json::Bool(b) => Ok(Const::Bool(*b)),
            other => Err(format!("unsupported parameter {other}")),
        })
        .collect()
}

fn schema_columns(schema: &aggprov_krel::schema::Schema) -> Json {
    Json::Arr(schema.attrs().iter().map(|a| Json::str(a.name())).collect())
}

/// Renders a result as response fields: column names, then one
/// `{"values": […], "annotation": "…"}` object per row (support order).
/// Cells and annotations go over the wire in their `Display` form — the
/// same renderings every example and doctest in this repo asserts on.
fn render_relation_body<A>(out: &ResultSet<A>) -> Vec<(&'static str, Json)>
where
    A: CommutativeSemiring + fmt::Display,
    Value<A>: fmt::Display,
{
    let rows: Vec<Json> = out
        .rows()
        .map(|row| {
            let values: Vec<Json> = (0..out.schema().arity())
                .map(|i| Json::str(row.at(i).to_string()))
                .collect();
            let mut obj = BTreeMap::new();
            obj.insert("values".to_string(), Json::Arr(values));
            obj.insert(
                "annotation".to_string(),
                Json::str(row.annotation().to_string()),
            );
            Json::Obj(obj)
        })
        .collect();
    vec![
        ("columns", schema_columns(out.schema())),
        ("count", Json::Int(out.len() as i64)),
        ("rows", Json::Arr(rows)),
    ]
}

/// Renders a valuated `Km<K>` result, collapsing to the base semiring
/// when every symbolic atom has resolved (`"collapsed": true`) and
/// falling back to the symbolic rendering otherwise.
fn render_km_result<K>(out: &ResultSet<aggprov_core::Km<K>>) -> Result<(Json, Control), String>
where
    K: CommutativeSemiring + fmt::Display,
    Value<K>: fmt::Display,
    Value<aggprov_core::Km<K>>: fmt::Display,
    aggprov_core::Km<K>: CommutativeSemiring + fmt::Display,
{
    let body = match out.collapse() {
        Ok(collapsed) => {
            let mut body = render_relation_body(&collapsed);
            body.push(("collapsed", Json::Bool(true)));
            body
        }
        Err(_) => {
            let mut body = render_relation_body(out);
            body.push(("collapsed", Json::Bool(false)));
            body
        }
    };
    Ok((Json::obj(body), Control::Continue))
}
