//! In-process integration tests: a real server on a real socket, real
//! clients on real threads.

use aggprov_engine::ProvDb;
use aggprov_server::{Client, Json, Server};
use std::thread::JoinHandle;

/// Spawns a server on an OS-assigned port over a seeded database,
/// returning its address and the serve-thread handle.
fn spawn_server(seed_sql: &str) -> (String, JoinHandle<()>) {
    let mut db = ProvDb::new();
    if !seed_sql.is_empty() {
        db.exec(seed_sql).expect("seed");
    }
    let server = Server::bind_with("127.0.0.1:0", db).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        server.serve().expect("serve");
    });
    (addr, handle)
}

const SEED: &str = "CREATE TABLE emp (dept TEXT, sal NUM);
    INSERT INTO emp VALUES ('d1', 20) PROVENANCE p1;
    INSERT INTO emp VALUES ('d1', 10) PROVENANCE p2;
    INSERT INTO emp VALUES ('d2', 15) PROVENANCE p3;";

const GROUPED: &str = "SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept";

#[test]
fn multi_client_smoke() {
    let (addr, server) = spawn_server(SEED);

    // Eight concurrent clients: prepare, execute, parameterized execute.
    let mut clients = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr.as_str()).expect("connect");
            c.ping().expect("ping");
            let stmt = c.prepare(GROUPED).expect("prepare");
            let grouped = c.execute(stmt, vec![]).expect("execute");
            assert_eq!(grouped.get("count"), Some(&Json::Int(2)));
            let by_dept = c
                .prepare("SELECT sal FROM emp WHERE dept = $1")
                .expect("prepare param");
            let d1 = c
                .execute(by_dept, vec![Json::str("d1")])
                .expect("execute param");
            assert_eq!(d1.get("count"), Some(&Json::Int(2)));
            let d2 = c
                .execute(by_dept, vec![Json::str("d2")])
                .expect("execute param");
            assert_eq!(d2.get("count"), Some(&Json::Int(1)));
            grouped.get("rows").cloned().expect("rows")
        }));
    }
    let renders: Vec<Json> = clients
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    assert!(
        renders.windows(2).all(|w| w[0] == w[1]),
        "every client must see the identical grouped result"
    );

    let mut admin = Client::connect(addr.as_str()).expect("connect");
    admin.shutdown().expect("shutdown");
    server.join().expect("serve thread");
}

#[test]
fn errors_never_kill_the_connection_or_the_server() {
    let (addr, server) = spawn_server(SEED);
    let mut c = Client::connect(addr.as_str()).expect("connect");

    // Parse error, unknown op, bad SQL, bad handle, bad params: each is
    // an error *response*; the session keeps serving afterwards.
    let (bad_json, _) = raw_roundtrip(&addr, "{not json");
    assert_eq!(bad_json.get("ok"), Some(&Json::Bool(false)));
    assert!(c
        .request(Json::obj([("op", Json::str("frobnicate"))]))
        .is_err());
    assert!(c.sql("SELEKT 1").is_err());
    assert!(c.query("SELECT missing FROM emp").is_err());
    assert!(c.execute(999, vec![]).is_err());
    let stmt = c
        .prepare("SELECT sal FROM emp WHERE dept = $1")
        .expect("prepare");
    assert!(c.execute(stmt, vec![]).is_err(), "missing arg");
    assert!(
        c.execute(stmt, vec![Json::Float(1.5)]).is_err(),
        "unsupported param type"
    );

    // The same session still works.
    let ok = c.execute(stmt, vec![Json::str("d1")]).expect("recovered");
    assert_eq!(ok.get("count"), Some(&Json::Int(2)));

    c.shutdown().expect("shutdown");
    server.join().expect("serve thread");
}

/// Sends one raw line (bypassing the client's JSON encoding) and reads
/// one response line.
fn raw_roundtrip(addr: &str, line: &str) -> (Json, std::net::TcpStream) {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("write");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read");
    (Json::parse(response.trim()).expect("parse"), stream)
}

#[test]
fn sessions_pin_epochs_until_refresh() {
    let (addr, server) = spawn_server(SEED);

    let mut reader = Client::connect(addr.as_str()).expect("connect reader");
    let stmt = reader.prepare(GROUPED).expect("prepare");
    let before = reader.execute(stmt, vec![]).expect("execute");

    // A second connection plays writer and publishes a new epoch.
    let mut writer = Client::connect(addr.as_str()).expect("connect writer");
    writer
        .sql("INSERT INTO emp VALUES ('d3', 99) PROVENANCE p4")
        .expect("insert");

    // The reader's pinned snapshot is bit-identical to before the write.
    let after = reader.execute(stmt, vec![]).expect("execute again");
    assert_eq!(before.get("rows"), after.get("rows"));
    assert_eq!(before.get("epoch"), after.get("epoch"));

    // After refresh, the same statement handle sees the new epoch.
    let refreshed = reader.refresh().expect("refresh");
    assert_eq!(
        refreshed.get("invalidated"),
        Some(&Json::Arr(vec![])),
        "statement re-prepares cleanly"
    );
    let now = reader.execute(stmt, vec![]).expect("execute refreshed");
    assert_eq!(now.get("count"), Some(&Json::Int(3)));

    // DDL that drops a scanned table invalidates the handle on refresh.
    writer.sql("DROP TABLE emp").expect("drop");
    let refreshed = reader.refresh().expect("refresh after drop");
    assert_eq!(
        refreshed.get("invalidated"),
        Some(&Json::Arr(vec![Json::Int(stmt)])),
        "dropped table invalidates the statement"
    );
    assert!(reader.execute(stmt, vec![]).is_err());

    writer.shutdown().expect("shutdown");
    server.join().expect("serve thread");
}

#[test]
fn provenance_interrogation_over_the_wire() {
    let (addr, server) = spawn_server(SEED);
    let mut c = Client::connect(addr.as_str()).expect("connect");

    let stored = c
        .request(Json::obj([
            ("op", Json::str("query")),
            ("sql", Json::str(GROUPED)),
            ("store", Json::Bool(true)),
        ]))
        .expect("store");
    let result = stored.get("result").and_then(Json::as_int).expect("handle");

    // Valuating everything to 1 collapses to the plain bag answer.
    let plain = c
        .request(Json::obj([
            ("op", Json::str("valuate")),
            ("result", Json::Int(result)),
        ]))
        .expect("valuate");
    assert_eq!(plain.get("collapsed"), Some(&Json::Bool(true)));
    assert_eq!(plain.get("count"), Some(&Json::Int(2)));
    let rendered = plain.get("rows").map(Json::to_string).unwrap_or_default();
    assert!(rendered.contains("30"), "d1 total: {rendered}");

    // Deleting p2 shrinks d1's sum to 20 (deletion propagation without
    // re-running the query).
    let deleted = c
        .request(Json::obj([
            ("op", Json::str("delete_tokens")),
            ("result", Json::Int(result)),
            ("tokens", Json::Arr(vec![Json::str("p2")])),
            ("store", Json::Bool(true)),
        ]))
        .expect("delete");
    let shrunk = deleted
        .get("result")
        .and_then(Json::as_int)
        .expect("handle");
    let plain = c
        .request(Json::obj([
            ("op", Json::str("valuate")),
            ("result", Json::Int(shrunk)),
        ]))
        .expect("valuate shrunk");
    let rendered = plain.get("rows").map(Json::to_string).unwrap_or_default();
    assert!(rendered.contains("20"), "after deletion: {rendered}");
    assert!(!rendered.contains("30"), "after deletion: {rendered}");

    // Security reading: p1/p2 confidential, p3 secret; a C-cleared
    // principal sees d1's total but not d2's.
    let view = c
        .request(Json::obj([
            ("op", Json::str("clearance")),
            ("result", Json::Int(result)),
            (
                "levels",
                Json::obj([
                    ("p1", Json::str("C")),
                    ("p2", Json::str("C")),
                    ("p3", Json::str("S")),
                ]),
            ),
            ("cred", Json::str("C")),
        ]))
        .expect("clearance");
    let rendered = view.to_string();
    assert!(rendered.contains("d1"), "C sees d1: {rendered}");

    // Handles close; closing twice is an error.
    c.request(Json::obj([
        ("op", Json::str("close")),
        ("result", Json::Int(result)),
    ]))
    .expect("close");
    assert!(c
        .request(Json::obj([
            ("op", Json::str("close")),
            ("result", Json::Int(result))
        ]))
        .is_err());

    c.shutdown().expect("shutdown");
    server.join().expect("serve thread");
}

#[test]
fn materialized_views_over_the_wire() {
    let (addr, server) = spawn_server(SEED);
    let mut writer = Client::connect(addr.as_str()).expect("connect writer");

    // Materialize on the live database; the server reports the chosen
    // maintenance strategy.
    let strategy = writer.materialize("mass", GROUPED).expect("materialize");
    assert_eq!(strategy, "incremental");

    // The writer's own snapshot predates the view: reads fail until the
    // session re-pins.
    assert!(writer.view("mass").is_err());
    writer.refresh().expect("refresh");
    let mass = writer.view("mass").expect("view");
    assert_eq!(mass.get("count"), Some(&Json::Int(2)));
    assert_eq!(mass.get("strategy"), Some(&Json::str("incremental")));
    assert_eq!(writer.views().expect("views"), vec!["mass".to_string()]);

    // A reader pins the epoch, the writer mutates: the reader's view is
    // frozen until refresh, then shows the *maintained* (not re-run) rows.
    let mut reader = Client::connect(addr.as_str()).expect("connect reader");
    writer
        .sql("INSERT INTO emp VALUES ('d3', 99) PROVENANCE p4")
        .expect("insert");
    let frozen = reader.view("mass").expect("frozen view");
    assert_eq!(frozen.get("count"), Some(&Json::Int(2)));
    reader.refresh().expect("refresh");
    let maintained = reader.view("mass").expect("maintained view");
    assert_eq!(maintained.get("count"), Some(&Json::Int(3)));
    let rendered = maintained
        .get("rows")
        .map(Json::to_string)
        .unwrap_or_default();
    assert!(rendered.contains("d3"), "maintained view: {rendered}");

    // Database-level deletion propagation flows into the view: firing p2
    // shrinks d1's total from 30 to 20.
    writer.db_delete_tokens(&["p2"]).expect("db_delete_tokens");
    reader.refresh().expect("refresh");
    let shrunk = reader.view("mass").expect("view after deletion");
    let rendered = shrunk.get("rows").map(Json::to_string).unwrap_or_default();
    assert!(rendered.contains("20"), "after deletion: {rendered}");
    assert!(!rendered.contains("30"), "after deletion: {rendered}");

    // `"store": true` parks the view's annotated relation under a result
    // handle, so the interrogation ops compose with views.
    let stored = reader
        .request(Json::obj([
            ("op", Json::str("view")),
            ("name", Json::str("mass")),
            ("store", Json::Bool(true)),
        ]))
        .expect("store view");
    let handle = stored.get("result").and_then(Json::as_int).expect("handle");
    let plain = reader
        .request(Json::obj([
            ("op", Json::str("valuate")),
            ("result", Json::Int(handle)),
        ]))
        .expect("valuate view");
    assert_eq!(plain.get("collapsed"), Some(&Json::Bool(true)));

    // Dropping the base table breaks the dependent view loudly.
    writer.sql("DROP TABLE emp").expect("drop");
    writer.refresh().expect("refresh");
    let err = writer.view("mass").expect_err("broken view").to_string();
    assert!(err.contains("broken"), "unexpected error: {err}");

    // drop_view removes it; unknown views stay errors.
    writer.drop_view("mass").expect("drop_view");
    writer.refresh().expect("refresh");
    assert!(writer.views().expect("views").is_empty());
    assert!(writer.view("mass").is_err());
    assert!(writer.drop_view("nope").is_err());
    assert!(writer.materialize("bad", "SELECT x FROM nope").is_err());

    writer.shutdown().expect("shutdown");
    server.join().expect("serve thread");
}

#[test]
fn graceful_shutdown_wakes_idle_connections() {
    let (addr, server) = spawn_server("");
    // An idle connection sits blocked in read; shutdown must unblock it.
    let idle = std::net::TcpStream::connect(addr.as_str()).expect("idle connect");
    let mut admin = Client::connect(addr.as_str()).expect("connect");
    admin.sql("CREATE TABLE t (x NUM)").expect("ddl");
    admin.shutdown().expect("shutdown");
    server.join().expect("serve thread drains");
    // The idle socket is shut down by the server: reads see EOF.
    use std::io::Read;
    let mut buf = [0u8; 8];
    let n = (&idle).read(&mut buf).expect("read after shutdown");
    assert_eq!(n, 0, "idle connection sees EOF");
}
