//! # aggprov-workloads
//!
//! Synthetic data, query-plan and valuation generators for the
//! aggregate-provenance experiments:
//!
//! * [`org`] — scaled-up versions of the paper's employee/department
//!   running example, with one provenance token per tuple and plain-bag
//!   twins for the reference engine;
//! * [`plans`] — random SPJU-AGB plans with dual evaluation (annotated
//!   operators vs the independent bag engine);
//! * [`randrel`] — random annotated tables and token valuations;
//! * [`pushdown`] — the σ-above-⋈ workload the plan optimizer's
//!   perf-trajectory point (`BENCH_pr5.json`) tracks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod org;
pub mod plans;
pub mod pushdown;
pub mod randrel;
