//! The synthetic organisation workload.
//!
//! Scaled-up versions of the paper's running example (Figure 1): an
//! employee relation `emp(emp, dept, sal)` with one provenance token per
//! tuple, plus a department relation `dept(dept, region)`. Deterministic
//! given the seed, so experiments are reproducible.

use aggprov_algebra::domain::Const;
use aggprov_algebra::poly::NatPoly;
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{Prov, Value};
use aggprov_krel::reference::BagRel;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the organisation workload.
#[derive(Clone, Copy, Debug)]
pub struct OrgParams {
    /// Number of departments.
    pub departments: usize,
    /// Employees per department.
    pub employees_per_dept: usize,
    /// Salary range (inclusive bounds), in whole units.
    pub salary_range: (i64, i64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for OrgParams {
    fn default() -> Self {
        OrgParams {
            departments: 10,
            employees_per_dept: 20,
            salary_range: (10, 200),
            seed: 42,
        }
    }
}

/// The generated workload: annotated relations, their plain twins, and the
/// token names.
#[derive(Clone, Debug)]
pub struct Org {
    /// `emp(emp, dept, sal)` with one token per tuple.
    pub emp: MKRel<Prov>,
    /// `dept(dept, region)` with one token per tuple.
    pub dept: MKRel<Prov>,
    /// The same employee data as a plain bag (for the reference engine).
    pub emp_bag: BagRel,
    /// The same department data as a plain bag.
    pub dept_bag: BagRel,
    /// Employee token names (`e0`, `e1`, …).
    pub emp_tokens: Vec<String>,
    /// Department token names (`d0`, …).
    pub dept_tokens: Vec<String>,
}

/// Generates the organisation workload.
pub fn org(params: OrgParams) -> Org {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut emp = Relation::empty(Schema::new(["emp", "dept", "sal"]).expect("schema"));
    let mut emp_rows = Vec::new();
    let mut emp_tokens = Vec::new();
    let mut dept = Relation::empty(Schema::new(["dept", "region"]).expect("schema"));
    let mut dept_rows = Vec::new();
    let mut dept_tokens = Vec::new();

    let mut emp_id = 0usize;
    for d in 0..params.departments {
        let dept_name = format!("d{d}");
        let region = format!("region{}", d % 4);
        let token = format!("d{d}");
        dept.insert(
            vec![Value::str(&dept_name), Value::str(&region)],
            Km::embed(NatPoly::token(&token)),
        )
        .expect("insert");
        dept_rows.push(vec![Const::str(&dept_name), Const::str(&region)]);
        dept_tokens.push(token);

        for _ in 0..params.employees_per_dept {
            let sal = rng.random_range(params.salary_range.0..=params.salary_range.1);
            let token = format!("e{emp_id}");
            emp.insert(
                vec![
                    Value::int(emp_id as i64),
                    Value::str(&dept_name),
                    Value::int(sal),
                ],
                Km::embed(NatPoly::token(&token)),
            )
            .expect("insert");
            emp_rows.push(vec![
                Const::int(emp_id as i64),
                Const::str(&dept_name),
                Const::int(sal),
            ]);
            emp_tokens.push(token);
            emp_id += 1;
        }
    }

    Org {
        emp,
        dept,
        emp_bag: BagRel::new(&["emp", "dept", "sal"], emp_rows),
        dept_bag: BagRel::new(&["dept", "region"], dept_rows),
        emp_tokens,
        dept_tokens,
    }
}

/// Loads the workload into a fresh provenance database (tables `emp`,
/// `dept`).
pub fn org_database(params: OrgParams) -> (aggprov_engine::ProvDb, Org) {
    let o = org(params);
    let mut db = aggprov_engine::ProvDb::new();
    db.register("emp", o.emp.clone());
    db.register("dept", o.dept.clone());
    (db, o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = org(OrgParams::default());
        let b = org(OrgParams::default());
        assert_eq!(a.emp, b.emp);
        assert_eq!(a.emp_bag, b.emp_bag);
        assert_eq!(a.emp.len(), 200);
        assert_eq!(a.dept.len(), 10);
    }

    #[test]
    fn database_answers_group_by() {
        let (db, o) = org_database(OrgParams {
            departments: 3,
            employees_per_dept: 4,
            ..Default::default()
        });
        let out = db
            .query("SELECT dept, SUM(sal) AS total FROM emp GROUP BY dept")
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(o.emp_tokens.len(), 12);
    }
}
