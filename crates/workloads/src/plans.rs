//! Random SPJU-AGB query plans with dual evaluation.
//!
//! [`Plan`]s are small relational-algebra trees over tables with the fixed
//! schema `(g, v, w)`. They evaluate two ways:
//!
//! * [`eval_mk`] — through the annotated operators of `aggprov-core`, for
//!   any annotation semiring;
//! * [`eval_bag`] — through the independent plain-bag reference engine.
//!
//! The homomorphism-commutation and set/bag-compatibility property tests
//! are built on this pair: the paper's Theorem 3.3 (and its §4 extension)
//! says the first commutes with valuations, and specialized to `ℕ` it must
//! agree with the second.

use aggprov_algebra::domain::Const;
use aggprov_algebra::monoid::MonoidKind;
use aggprov_core::annotation::AggAnnotation;
use aggprov_core::difference::difference;
use aggprov_core::km::CmpPred;
use aggprov_core::ops::{self, AggSpec, MKRel};
use aggprov_core::Value;
use aggprov_krel::error::Result;
use aggprov_krel::reference::BagRel;
use rand::rngs::StdRng;
use rand::Rng;

/// The fixed base-table schema used by random plans.
pub const BASE_SCHEMA: [&str; 3] = ["g", "v", "w"];
/// The name of the aggregate output column in grouped plans.
pub const AGG_COL: &str = "agg";

/// A randomly generated query plan.
#[derive(Clone, PartialEq, Debug)]
pub enum Plan {
    /// Scan of base table `i` (schema `g, v, w`).
    Scan(usize),
    /// Union of two plans of the same stratum.
    Union(Box<Plan>, Box<Plan>),
    /// The paper's hybrid difference of two plans of the same stratum.
    Difference(Box<Plan>, Box<Plan>),
    /// `σ_{col = c}`.
    SelectEq(Box<Plan>, &'static str, i64),
    /// `Π_{g, v}` of a base-stratum plan.
    Project(Box<Plan>),
    /// `GROUP BY g, AGG(v) AS agg` of a base-stratum plan.
    GroupBy(Box<Plan>, MonoidKind),
    /// Whole-relation aggregation `AGG(v) AS agg` (one tuple, no grouping).
    AggAll(Box<Plan>, MonoidKind),
    /// `HAVING agg = c` over a grouped plan — nested aggregation (§4).
    HavingEq(Box<Plan>, i64),
    /// `HAVING agg ⋈ c` with an order/inequality predicate (the paper's
    /// comparison extension).
    HavingCmp(Box<Plan>, CmpPred, i64),
}

impl Plan {
    /// The output column names of the plan.
    pub fn schema(&self) -> Vec<&'static str> {
        match self {
            Plan::Scan(_) => BASE_SCHEMA.to_vec(),
            Plan::Union(l, _) | Plan::Difference(l, _) => l.schema(),
            Plan::SelectEq(p, _, _) | Plan::HavingEq(p, _) | Plan::HavingCmp(p, _, _) => p.schema(),
            Plan::Project(_) => vec!["g", "v"],
            Plan::GroupBy(_, _) => vec!["g", AGG_COL],
            Plan::AggAll(_, _) => vec![AGG_COL],
        }
    }

    /// True iff the plan aggregates with `SUM` anywhere — such plans cannot
    /// be specialized to set semantics (`B` is incompatible with `SUM`,
    /// paper §3.4).
    pub fn uses_sum(&self) -> bool {
        match self {
            Plan::Scan(_) => false,
            Plan::Union(l, r) | Plan::Difference(l, r) => l.uses_sum() || r.uses_sum(),
            Plan::SelectEq(p, _, _)
            | Plan::Project(p)
            | Plan::HavingEq(p, _)
            | Plan::HavingCmp(p, _, _) => p.uses_sum(),
            Plan::GroupBy(p, kind) | Plan::AggAll(p, kind) => {
                *kind == MonoidKind::Sum || p.uses_sum()
            }
        }
    }

    /// The number of operators (for reporting).
    pub fn size(&self) -> usize {
        match self {
            Plan::Scan(_) => 1,
            Plan::Union(l, r) | Plan::Difference(l, r) => 1 + l.size() + r.size(),
            Plan::SelectEq(p, _, _)
            | Plan::Project(p)
            | Plan::GroupBy(p, _)
            | Plan::AggAll(p, _)
            | Plan::HavingEq(p, _)
            | Plan::HavingCmp(p, _, _) => 1 + p.size(),
        }
    }
}

const AGG_KINDS: [MonoidKind; 3] = [MonoidKind::Sum, MonoidKind::Min, MonoidKind::Max];

/// Generates a random base-stratum plan (schema `g, v, w`).
fn random_base(rng: &mut StdRng, tables: usize, depth: usize) -> Plan {
    if depth == 0 {
        return Plan::Scan(rng.random_range(0..tables));
    }
    match rng.random_range(0..4) {
        0 => Plan::Scan(rng.random_range(0..tables)),
        1 => Plan::Union(
            Box::new(random_base(rng, tables, depth - 1)),
            Box::new(random_base(rng, tables, depth - 1)),
        ),
        2 => Plan::Difference(
            Box::new(random_base(rng, tables, depth - 1)),
            Box::new(random_base(rng, tables, depth - 1)),
        ),
        _ => {
            let col = ["g", "v", "w"][rng.random_range(0..3usize)];
            let c = rng.random_range(-3..4);
            Plan::SelectEq(Box::new(random_base(rng, tables, depth - 1)), col, c)
        }
    }
}

/// Generates a random plan, possibly with (nested) aggregation.
pub fn random_plan(rng: &mut StdRng, tables: usize, depth: usize) -> Plan {
    match rng.random_range(0..6) {
        0 => random_base(rng, tables, depth),
        1 => Plan::Project(Box::new(random_base(rng, tables, depth))),
        2 => Plan::AggAll(
            Box::new(random_base(rng, tables, depth)),
            AGG_KINDS[rng.random_range(0..AGG_KINDS.len())],
        ),
        3..=4 => Plan::GroupBy(
            Box::new(random_base(rng, tables, depth)),
            AGG_KINDS[rng.random_range(0..AGG_KINDS.len())],
        ),
        _ => {
            // Nested aggregation: HAVING over a grouped plan, possibly
            // combined with a further difference of grouped plans.
            let g1 = Plan::GroupBy(
                Box::new(random_base(rng, tables, depth)),
                AGG_KINDS[rng.random_range(0..AGG_KINDS.len())],
            );
            let having = if rng.random_bool(0.5) {
                Plan::HavingEq(Box::new(g1), rng.random_range(-3..8))
            } else {
                let pred = [CmpPred::Lt, CmpPred::Le, CmpPred::Ne][rng.random_range(0..3usize)];
                Plan::HavingCmp(Box::new(g1), pred, rng.random_range(-3..8))
            };
            if rng.random_bool(0.4) {
                let g2 = Plan::GroupBy(
                    Box::new(random_base(rng, tables, depth)),
                    AGG_KINDS[rng.random_range(0..AGG_KINDS.len())],
                );
                Plan::Difference(Box::new(having), Box::new(g2))
            } else {
                having
            }
        }
    }
}

/// Evaluates a plan over annotated tables.
pub fn eval_mk<A: AggAnnotation>(plan: &Plan, tables: &[MKRel<A>]) -> Result<MKRel<A>> {
    match plan {
        Plan::Scan(i) => Ok(tables[*i].clone()),
        Plan::Union(l, r) => ops::union(&eval_mk(l, tables)?, &eval_mk(r, tables)?),
        Plan::Difference(l, r) => difference(&eval_mk(l, tables)?, &eval_mk(r, tables)?),
        Plan::SelectEq(p, col, c) => ops::select_eq(&eval_mk(p, tables)?, col, &Value::int(*c)),
        Plan::Project(p) => ops::project(&eval_mk(p, tables)?, &["g", "v"]),
        Plan::GroupBy(p, kind) => ops::group_by(
            &eval_mk(p, tables)?,
            &["g"],
            &[AggSpec {
                kind: *kind,
                attr: "v",
                out: AGG_COL,
            }],
        ),
        Plan::AggAll(p, kind) => ops::agg_all(
            &eval_mk(p, tables)?,
            &[AggSpec {
                kind: *kind,
                attr: "v",
                out: AGG_COL,
            }],
        ),
        Plan::HavingEq(p, c) => ops::select_eq(&eval_mk(p, tables)?, AGG_COL, &Value::int(*c)),
        Plan::HavingCmp(p, pred, c) => {
            ops::select_cmp(&eval_mk(p, tables)?, AGG_COL, *pred, &Value::int(*c))
        }
    }
}

/// Evaluates a plan over plain bags with the reference engine. Mirrors the
/// annotated semantics at `K = ℕ` (the δ-annotation makes each group count
/// once; the hybrid difference keeps multiplicities of survivors).
pub fn eval_bag(plan: &Plan, tables: &[BagRel]) -> BagRel {
    match plan {
        Plan::Scan(i) => tables[*i].clone(),
        Plan::Union(l, r) => eval_bag(l, tables).union(&eval_bag(r, tables)),
        Plan::Difference(l, r) => {
            // Hybrid semantics (§5): keep rows of `l` absent from `r`,
            // with their multiplicity.
            let left = eval_bag(l, tables);
            let right = eval_bag(r, tables);
            BagRel {
                attrs: left.attrs.clone(),
                rows: left
                    .rows
                    .iter()
                    .filter(|row| !right.rows.contains(row))
                    .cloned()
                    .collect(),
            }
        }
        Plan::SelectEq(p, col, c) => eval_bag(p, tables).select_eq(col, &Const::int(*c)),
        Plan::Project(p) => eval_bag(p, tables).project(&["g", "v"]),
        Plan::GroupBy(p, kind) => {
            let mut out = eval_bag(p, tables).group_aggregate(&["g"], *kind, "v");
            out.attrs[1] = AGG_COL.to_string();
            out
        }
        Plan::AggAll(p, kind) => {
            let value = eval_bag(p, tables).aggregate(*kind, "v");
            BagRel::new(&[AGG_COL], vec![vec![value]])
        }
        Plan::HavingEq(p, c) => eval_bag(p, tables).select_eq(AGG_COL, &Const::int(*c)),
        Plan::HavingCmp(p, pred, c) => {
            let rel = eval_bag(p, tables);
            let idx = rel
                .attrs
                .iter()
                .position(|a| a == AGG_COL)
                .expect("agg column");
            let c = Const::int(*c);
            rel.select(|row| pred.decide(&row[idx], &c))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randrel::{random_prov_tables, to_bag};
    use aggprov_algebra::hom::Valuation;
    use aggprov_algebra::semiring::Nat;
    use aggprov_core::eval::{collapse, map_hom_mk, read_off_bag};
    use rand::SeedableRng;

    #[test]
    fn plans_evaluate_on_both_engines() {
        let mut rng = StdRng::seed_from_u64(7);
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 6);
        let val = Valuation::<Nat>::ones().set_all(
            tokens
                .iter()
                .map(|t| (aggprov_algebra::poly::Var::new(t), Nat(1))),
        );
        for _ in 0..30 {
            let plan = random_plan(&mut rng, 2, 2);
            let annotated = eval_mk(&plan, &tables).unwrap();
            let specialized = map_hom_mk(&annotated, &|p| val.eval(p));
            let ours = read_off_bag(&collapse(&specialized).unwrap()).unwrap();
            let bags: Vec<BagRel> = tables.iter().map(|t| to_bag(t, &val)).collect();
            let reference = eval_bag(&plan, &bags);
            assert_eq!(ours.sorted_rows(), reference.sorted_rows(), "plan {plan:?}");
        }
    }
}
