//! The pushdown-sensitive workload: a selective `WHERE` written *above*
//! a join — the exact shape the ROADMAP's plan-level-optimization item
//! names (`σ`-above-`⋈`), and the shape `BENCH_pr5.json` tracks.
//!
//! The SQL surface puts `WHERE` after `JOIN`, so lowering always places
//! the filter above the join: without predicate pushdown the engine
//! joins the full `emp` table against the `dept` dimension and then
//! discards ~94% of the output; with pushdown the filter runs against
//! the base table first and the join sees only the surviving sliver.
//! Everything is ground with distinct provenance tokens, so the
//! optimizer's groundness gates all open — the measured difference is
//! purely the rewrite.

use aggprov_algebra::poly::NatPoly;
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{Prov, Value};
use aggprov_engine::ProvDb;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;

/// Distinct departments in the dimension table.
pub const DEPTS: i64 = 500;

/// The selective salary cut: `sal` is uniform over `10..200`, so
/// `sal < 21` keeps ≈ 6% of the employee rows.
pub const SAL_CUT: i64 = 21;

/// The σ-above-⋈ query, exactly as a user would write it (filter textually
/// after the join — and structurally above it in the lowered plan).
pub const SIGMA_JOIN_SQL: &str = "SELECT e.emp, d.region FROM emp e \
     JOIN dept d ON e.dept = d.dept2 WHERE e.sal < 21";

/// A three-table chain written largest-first, so greedy reordering (with
/// the filtered `emp` slice cheapest) has room to act: the `tag`
/// dimension is tiny and joined last in the text.
pub const REORDER_SQL: &str = "SELECT e.emp, t.label FROM emp e \
     JOIN dept d ON e.dept = d.dept2 JOIN tag t ON d.region = t.region2 \
     WHERE e.sal < 21";

fn tok(name: &str) -> Prov {
    Km::embed(NatPoly::token(name))
}

fn schema(names: &[&str]) -> Schema {
    Schema::new(names.iter().copied()).expect("schema")
}

/// `emp(emp, dept, sal)`: `n` ground rows with distinct tokens and a
/// deterministic LCG value distribution (comparable across machines and
/// PRs, like the PR 2–4 bench fixtures).
pub fn emp_table(n: usize) -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["emp", "dept", "sal"]));
    let mut state: u64 = 0xB5AD_4ECE;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let dept = (state >> 33) as i64 % DEPTS;
        let sal = 10 + (state >> 17) as i64 % 190;
        rel.insert(
            vec![Value::int(i as i64), Value::int(dept), Value::int(sal)],
            tok(&format!("p{i}")),
        )
        .expect("insert");
    }
    rel
}

/// `dept(dept2, region)`: one row per department key.
pub fn dept_table() -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["dept2", "region"]));
    for d in 0..DEPTS {
        rel.insert(
            vec![Value::int(d), Value::int(d % 7)],
            tok(&format!("d{d}")),
        )
        .expect("insert");
    }
    rel
}

/// `tag(region2, label)`: a tiny third dimension (7 rows) for the
/// reordering workload.
pub fn tag_table() -> MKRel<Prov> {
    let mut rel = Relation::empty(schema(&["region2", "label"]));
    for r in 0..7 {
        rel.insert(
            vec![Value::int(r), Value::int(100 + r)],
            tok(&format!("t{r}")),
        )
        .expect("insert");
    }
    rel
}

/// The assembled database: `emp` at `rows` rows plus both dimensions,
/// registered ground so every optimizer gate opens.
pub fn pushdown_db(rows: usize) -> ProvDb {
    let mut db = ProvDb::new();
    db.register("emp", emp_table(rows));
    db.register("dept", dept_table());
    db.register("tag", tag_table());
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_workload_is_ground_selective_and_equivalent() {
        let db = pushdown_db(400);
        let cat = db.catalog();
        assert!(cat.table("emp").unwrap().ground_cols.iter().all(|g| *g));

        // Selectivity: the cut keeps well under a fifth of the rows.
        let kept = db
            .query("SELECT emp FROM emp WHERE sal < 21")
            .unwrap()
            .len();
        assert!(kept * 5 < 400, "cut keeps {kept} of 400 rows");

        // The optimized and literal plans agree on both tracked queries.
        for sql in [SIGMA_JOIN_SQL, REORDER_SQL] {
            let opt = db.prepare(sql).unwrap().execute().unwrap().into_relation();
            let lit = db
                .prepare_unoptimized(sql)
                .unwrap()
                .execute()
                .unwrap()
                .into_relation();
            assert_eq!(opt, lit, "{sql}");
        }

        // And the rewrite actually fired: the optimized σ-above-⋈ plan
        // has its filter below the join.
        let stmt = db.prepare(SIGMA_JOIN_SQL).unwrap();
        assert_ne!(stmt.plan(), stmt.optimized_plan());
    }
}
