//! Random annotated relations and valuations for property tests.

use crate::plans::BASE_SCHEMA;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{Bool, Nat};
use aggprov_core::km::Km;
use aggprov_core::ops::MKRel;
use aggprov_core::{Prov, Value};
use aggprov_krel::reference::BagRel;
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use rand::rngs::StdRng;
use rand::Rng;

/// Generates `n_tables` random token-annotated tables with the plan schema
/// `(g, v, w)` and small value domains, returning the token names.
pub fn random_prov_tables(
    rng: &mut StdRng,
    n_tables: usize,
    rows_per_table: usize,
) -> (Vec<MKRel<Prov>>, Vec<String>) {
    let mut tables = Vec::new();
    let mut tokens = Vec::new();
    for t in 0..n_tables {
        let mut rel = Relation::empty(Schema::new(BASE_SCHEMA).expect("schema"));
        for r in 0..rows_per_table {
            let token = format!("t{t}_{r}");
            rel.insert(
                vec![
                    Value::int(rng.random_range(0..3)),
                    Value::int(rng.random_range(-3..4)),
                    Value::int(rng.random_range(-3..4)),
                ],
                Km::embed(NatPoly::token(&token)),
            )
            .expect("insert");
            tokens.push(token);
        }
        tables.push(rel);
    }
    (tables, tokens)
}

/// A random valuation of the tokens into small multiplicities.
pub fn random_nat_valuation(rng: &mut StdRng, tokens: &[String]) -> Valuation<Nat> {
    Valuation::ones().set_all(tokens.iter().map(|t| {
        (
            aggprov_algebra::poly::Var::new(t),
            Nat(rng.random_range(0..3)),
        )
    }))
}

/// A random valuation of the tokens into booleans (set semantics).
pub fn random_bool_valuation(rng: &mut StdRng, tokens: &[String]) -> Valuation<Bool> {
    Valuation::ones().set_all(tokens.iter().map(|t| {
        (
            aggprov_algebra::poly::Var::new(t),
            Bool(rng.random_bool(0.7)),
        )
    }))
}

/// Materializes a token-annotated base table as a plain bag under a
/// valuation: each tuple appears with its valuated multiplicity. Values
/// must be constants (base tables only).
pub fn to_bag(rel: &MKRel<Prov>, val: &Valuation<Nat>) -> BagRel {
    let attrs: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let mut rows = Vec::new();
    for (t, k) in rel.iter() {
        let base = k.try_collapse().expect("base tables carry plain tokens");
        let mult = val.eval(&base).0;
        let row: Vec<aggprov_algebra::domain::Const> = t
            .values()
            .iter()
            .map(|v| v.as_const().expect("base tables hold constants").clone())
            .collect();
        for _ in 0..mult {
            rows.push(row.clone());
        }
    }
    let attr_refs: Vec<&str> = attrs.iter().map(|s| s.as_str()).collect();
    BagRel::new(&attr_refs, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tables_and_valuations_are_seeded() {
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let (a, ta) = random_prov_tables(&mut r1, 2, 5);
        let (b, tb) = random_prov_tables(&mut r2, 2, 5);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn to_bag_expands_multiplicities() {
        let mut rng = StdRng::seed_from_u64(2);
        let (tables, tokens) = random_prov_tables(&mut rng, 1, 4);
        let val = Valuation::<Nat>::ones().set_all(
            tokens
                .iter()
                .map(|t| (aggprov_algebra::poly::Var::new(t), Nat(2))),
        );
        let bag = to_bag(&tables[0], &val);
        assert_eq!(bag.rows.len(), 8);
    }
}
