//! Deletion propagation at scale (experiment E7's scenario).
//!
//! The commutation theorem turns "what does the query return after these
//! deletions?" into an *algebraic substitution* on the stored result — no
//! re-evaluation. This example measures both routes on the organisation
//! workload and checks they agree.
//!
//! Run with: `cargo run --release --example deletion_propagation`

use aggprov::core::eval::{collapse, map_hom_mk};
use aggprov::prelude::*;
use aggprov::workloads::org::{org_database, OrgParams};
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;
use std::time::Instant;

fn main() {
    let params = OrgParams {
        departments: 30,
        employees_per_dept: 60,
        ..Default::default()
    };
    let (db, workload) = org_database(params);
    let query = "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept";

    // Evaluate once, symbolically.
    let t0 = Instant::now();
    let symbolic = db.query(query).expect("symbolic evaluation");
    let t_symbolic = t0.elapsed();

    // Scenario: every 7th employee resigns.
    let fired: Vec<&str> = workload
        .emp_tokens
        .iter()
        .step_by(7)
        .map(|s| s.as_str())
        .collect();

    // Route 1: specialize the stored provenance.
    let t0 = Instant::now();
    let val: Valuation<Nat> = Valuation::deleting(fired.iter().copied());
    let via_provenance =
        collapse(&map_hom_mk(&symbolic, &|p: &NatPoly| val.eval(p))).expect("resolve");
    let t_specialize = t0.elapsed();

    // Route 2: rebuild the database without the fired employees and
    // re-evaluate from scratch.
    let t0 = Instant::now();
    let mut db2 = aggprov::engine::ProvDb::new();
    let emp2 = {
        let mut rel = aggprov_krel::relation::Relation::empty(
            workload.emp.schema().clone(),
        );
        for (t, k) in workload.emp.iter() {
            let keep = k
                .try_collapse()
                .map(|p| val.eval(&p) != Nat(0))
                .unwrap_or(true);
            if keep {
                rel.insert(t.values().to_vec(), k.clone()).expect("insert");
            }
        }
        rel
    };
    db2.register("emp", emp2);
    let re_evaluated = db2.query(query).expect("re-evaluation");
    let via_reeval = collapse(&map_hom_mk(&re_evaluated, &|p: &NatPoly| {
        Valuation::<Nat>::ones().eval(p)
    }))
    .expect("resolve");
    let t_reeval = t0.elapsed();

    assert_eq!(
        via_provenance, via_reeval,
        "commutation with homomorphisms (Theorem 3.3)"
    );

    println!("workload: {} employees, {} departments", workload.emp.len(), params.departments);
    println!("deleted:  {} employees", fired.len());
    println!();
    println!("one-time symbolic evaluation: {t_symbolic:?}");
    println!("deletion via provenance:      {t_specialize:?}");
    println!("deletion via re-evaluation:   {t_reeval:?}");
    println!();
    let sample = via_provenance.iter().next().expect("non-empty");
    println!("sample result row: {} @ {}", sample.0, sample.1);
    println!("(both routes agree on all {} groups)", via_provenance.len());

    // The same stored result also answers trust questions: which groups
    // survive if we only trust even-numbered employees?
    let trusted: Valuation<aggprov_algebra::semiring::Bool> = Valuation::ones().set_all(
        workload
            .emp_tokens
            .iter()
            .enumerate()
            .map(|(i, t)| {
                (
                    aggprov_algebra::poly::Var::new(t),
                    aggprov_algebra::semiring::Bool(i % 2 == 0),
                )
            }),
    );
    let _trusted_view = map_hom_mk(&symbolic, &|p: &NatPoly| trusted.eval(p));
    println!("trust view computed from the same stored provenance — no re-evaluation.");
}
