//! Deletion propagation at scale (experiment E7's scenario).
//!
//! The commutation theorem turns "what does the query return after these
//! deletions?" into an *algebraic substitution* on the stored result — no
//! re-evaluation. This example prepares the query once, measures both
//! routes on the organisation workload through the fluent `ResultSet` API,
//! and checks they agree.
//!
//! Run with: `cargo run --release --example deletion_propagation`

use aggprov::prelude::*;
use aggprov::workloads::org::{org_database, OrgParams};
use aggprov_algebra::semiring::Nat;
use std::time::Instant;

fn main() {
    let params = OrgParams {
        departments: 30,
        employees_per_dept: 60,
        ..Default::default()
    };
    let (db, workload) = org_database(params);
    let query = "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept";

    // Prepare and evaluate once, symbolically.
    let t0 = Instant::now();
    let stmt = db.prepare(query).expect("prepare");
    let symbolic = stmt.execute().expect("symbolic evaluation");
    let t_symbolic = t0.elapsed();

    // Scenario: every 7th employee resigns.
    let fired: Vec<&str> = workload
        .emp_tokens
        .iter()
        .step_by(7)
        .map(|s| s.as_str())
        .collect();

    // Route 1: specialize the stored provenance.
    let t0 = Instant::now();
    let val: Valuation<Nat> = Valuation::deleting(fired.iter().copied());
    let via_provenance = symbolic.valuate(&val).collapse().expect("resolve");
    let t_specialize = t0.elapsed();

    // Route 2: rebuild the database without the fired employees and
    // re-evaluate from scratch.
    let t0 = Instant::now();
    let mut db2 = ProvDb::new();
    let emp2 = {
        let mut rel = aggprov_krel::relation::Relation::empty(workload.emp.schema().clone());
        for (t, k) in workload.emp.iter() {
            let keep = k
                .try_collapse()
                .map(|p| val.eval(&p) != Nat(0))
                .unwrap_or(true);
            if keep {
                rel.insert(t.values().to_vec(), k.clone()).expect("insert");
            }
        }
        rel
    };
    db2.register("emp", emp2);
    let via_reeval = db2
        .prepare(query)
        .expect("prepare")
        .execute()
        .expect("re-evaluation")
        .valuate(&Valuation::<Nat>::ones())
        .collapse()
        .expect("resolve");
    let t_reeval = t0.elapsed();

    assert_eq!(
        via_provenance.relation(),
        via_reeval.relation(),
        "commutation with homomorphisms (Theorem 3.3)"
    );

    println!(
        "workload: {} employees, {} departments",
        workload.emp.len(),
        params.departments
    );
    println!("deleted:  {} employees", fired.len());
    println!();
    println!("one-time symbolic evaluation: {t_symbolic:?}");
    println!("deletion via provenance:      {t_specialize:?}");
    println!("deletion via re-evaluation:   {t_reeval:?}");
    println!();
    let sample = via_provenance.first().expect("non-empty");
    println!(
        "sample result row: dept {} → {} @ {}",
        sample.get("dept").expect("column"),
        sample.get("mass").expect("column"),
        sample.annotation()
    );
    println!("(both routes agree on all {} groups)", via_provenance.len());

    // The same stored result also answers trust questions: which groups
    // survive if we only trust even-numbered employees?
    let trusted: Valuation<aggprov_algebra::semiring::Bool> =
        Valuation::ones().set_all(workload.emp_tokens.iter().enumerate().map(|(i, t)| {
            (
                aggprov_algebra::poly::Var::new(t),
                aggprov_algebra::semiring::Bool(i % 2 == 0),
            )
        }));
    let _trusted_view = symbolic.valuate(&trusted);
    println!("trust view computed from the same stored provenance — no re-evaluation.");
}
