//! Difference via aggregation (paper §5) and the law matrix (§5.2).
//!
//! `EXCEPT` runs the hybrid semantics `(R−S)(t) = [S(t)⊗⊤ = 0]·R(t)`:
//! presence in `S` is a boolean veto, survivors keep their `R`-annotation.
//! This example contrasts it with bag monus and ℤ-difference on
//! Example 5.3's data and prints the equivalence-law matrix.
//!
//! Run with: `cargo run --example difference_semantics`

use aggprov::core::difference::laws::{check_bag_monus, check_ours, check_z, DiffLaw};
use aggprov::core::{MKRel, Value};
use aggprov::engine::ProvDb;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::semiring::{IntZ, Nat};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;

fn main() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE emp (id NUM, dep TEXT);
         INSERT INTO emp VALUES (1, 'd1') PROVENANCE t1;
         INSERT INTO emp VALUES (2, 'd1') PROVENANCE t2;
         INSERT INTO emp VALUES (2, 'd2') PROVENANCE t3;
         CREATE TABLE closing (dep TEXT);
         INSERT INTO closing VALUES ('d1') PROVENANCE t4;",
    )
    .expect("load Example 5.3");

    let open = db
        .prepare("SELECT dep FROM emp EXCEPT SELECT dep FROM closing")
        .expect("prepare")
        .execute()
        .expect("difference");
    println!("== (Π_dep emp) − closing, symbolic (Example 5.3) ==");
    println!("{open}");

    println!("-- revoke the closure: t4 ↦ 0, other tokens kept symbolic --");
    println!("{}", open.delete_tokens(["t4"]));

    println!("-- all tokens present (Example 5.6) --");
    let ours = open
        .valuate(&Valuation::<Nat>::ones())
        .collapse()
        .expect("resolve");
    println!("hybrid:    {} row(s) — d1 vetoed entirely", ours.len());

    let r_bag: Relation<Nat, aggprov_algebra::domain::Const> = Relation::from_rows(
        Schema::new(["dep"]).unwrap(),
        [
            ([aggprov_algebra::domain::Const::str("d1")], Nat(2)),
            ([aggprov_algebra::domain::Const::str("d2")], Nat(1)),
        ],
    )
    .unwrap();
    let s_bag = Relation::from_rows(
        Schema::new(["dep"]).unwrap(),
        [([aggprov_algebra::domain::Const::str("d1")], Nat(1))],
    )
    .unwrap();
    let bag = aggprov_krel::monus::monus_difference(&r_bag, &s_bag).unwrap();
    println!("bag monus: {} row(s) — d1 keeps multiplicity 1", bag.len());

    // ---- The §5.2 law matrix --------------------------------------------
    println!();
    println!("== equivalence laws × semantics (Props 5.4–5.7) ==");
    let mk = |rows: &[(i64, u64)]| -> MKRel<Nat> {
        Relation::from_rows(
            Schema::new(["x"]).unwrap(),
            rows.iter().map(|(v, n)| (vec![Value::int(*v)], Nat(*n))),
        )
        .unwrap()
    };
    let (a, b, c) = (
        mk(&[(1, 2), (2, 1)]),
        mk(&[(1, 1), (3, 2)]),
        mk(&[(3, 1), (4, 1)]),
    );
    let zr = |rows: &[(i64, i64)]| {
        Relation::from_rows(
            Schema::new(["x"]).unwrap(),
            rows.iter()
                .map(|(v, n)| ([aggprov_algebra::domain::Const::int(*v)], IntZ(*n))),
        )
        .unwrap()
    };
    let (za, zb, zc) = (
        zr(&[(1, 2), (2, 1)]),
        zr(&[(1, 1), (3, 2)]),
        zr(&[(3, 1), (4, 1)]),
    );
    let nb = |rel: &MKRel<Nat>| {
        let mut out = Relation::empty(rel.schema().clone());
        for (t, k) in rel.iter() {
            let row: Vec<aggprov_algebra::domain::Const> = t
                .values()
                .iter()
                .map(|v| v.as_const().unwrap().clone())
                .collect();
            out.insert(row, *k).unwrap();
        }
        out
    };
    let (ba, bb, bc) = (nb(&a), nb(&b), nb(&c));

    println!(
        "{:<34} {:>8} {:>10} {:>8}",
        "law", "hybrid", "bag-monus", "ℤ"
    );
    for law in DiffLaw::ALL {
        let ours = check_ours(law, &a, &b, &c).unwrap();
        let monus = check_bag_monus(law, &ba, &bb, &bc).unwrap();
        let z = check_z(law, &za, &zb, &zc).unwrap();
        let mark = |b: bool| if b { "✓" } else { "✗" };
        println!(
            "{:<34} {:>8} {:>10} {:>8}",
            law.name(),
            mark(ours),
            mark(monus),
            mark(z)
        );
    }
    println!("(on this witness input; ✗ exhibits the paper's counterexamples)");
}
