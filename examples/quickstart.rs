//! Quickstart: prepare, execute, interrogate.
//!
//! Builds the paper's Figure 1 relation, prepares a GROUP BY SUM once, and
//! shows how one symbolic result answers many questions through the fluent
//! `ResultSet` API: deletion propagation, bag multiplicities, and
//! parameterized reuse — all by valuating the provenance tokens *after*
//! query evaluation, never re-running the query.
//!
//! Run with: `cargo run --example quickstart`

use aggprov::prelude::*;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;

fn main() {
    let mut db = Database::<Prov>::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
         INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
         INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
    )
    .expect("load Figure 1");

    println!("== Figure 1(a): the annotated employee relation ==");
    println!("{}", db.table("r").expect("table"));

    // Prepare once: parsing, name resolution and planning happen here;
    // every execute() below reuses the stored logical plan.
    let grouped_stmt = db
        .prepare("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept")
        .expect("prepare group-by");
    let grouped = grouped_stmt.execute().expect("execute");
    println!("== GROUP BY dept, SUM(sal): tensor values, δ annotations ==");
    println!("{grouped}");

    // Deletion propagation: fire employee 3 (token p3) without
    // re-evaluating the query.
    println!("== After deleting employee 3 (p3 ↦ 0) ==");
    println!("{}", grouped.delete_tokens(["p3"]));

    // Bag reading: give each employee a multiplicity and resolve.
    let bag = grouped
        .valuate(&Valuation::<Nat>::ones().set("p1", Nat(2)))
        .collapse()
        .expect("fully resolved");
    println!("== Under multiplicities (p1 ↦ 2, rest 1) ==");
    println!("{bag}");

    // Rows are addressable by column name.
    for row in bag.rows() {
        println!(
            "  dept {} has total mass {}",
            row.get("dept").expect("column"),
            row.get("mass").expect("column"),
        );
    }
    println!();

    // Nested aggregation: filter on the aggregate (paper §4), with the
    // threshold as a $1 parameter — one plan, many thresholds.
    let having = db
        .prepare("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept HAVING mass = $1")
        .expect("prepare having");
    let at_25 = having.execute_with(&[Const::int(25)]).expect("execute");
    println!("== HAVING mass = $1 with $1 = 25: symbolic equality tokens ==");
    println!("{at_25}");

    println!("== …resolved with every token present ==");
    println!(
        "{}",
        at_25
            .valuate(&Valuation::<Nat>::ones())
            .collapse()
            .expect("resolved")
    );

    // The same prepared plan, different parameter — still no re-parse.
    let at_45 = having.execute_with(&[Const::int(45)]).expect("execute");
    println!("== Same plan, $1 = 45, all tokens present ==");
    println!(
        "{}",
        at_45
            .valuate(&Valuation::<Nat>::ones())
            .collapse()
            .expect("resolved")
    );

    // The old free-function route still exists for homomorphisms that are
    // not valuations:
    let support = grouped.map_hom(|p: &NatPoly| aggprov_algebra::hierarchy::to_lineage(p));
    println!("== Lineage reading (which sources matter per group) ==");
    println!("{support}");
}
