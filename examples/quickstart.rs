//! Quickstart: annotate, aggregate, specialize.
//!
//! Builds the paper's Figure 1 relation, runs a GROUP BY SUM, and shows how
//! one symbolic result answers many questions: deletion propagation, bag
//! multiplicities, and set-style trust — all by valuating the provenance
//! tokens *after* query evaluation.
//!
//! Run with: `cargo run --example quickstart`

use aggprov::core::eval::{collapse, map_hom_mk};
use aggprov::prelude::*;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::Nat;

fn main() {
    let mut db = Database::<Prov>::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
         INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
         INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
    )
    .expect("load Figure 1");

    println!("== Figure 1(a): the annotated employee relation ==");
    println!("{}", db.table("r").expect("table"));

    let grouped = db
        .query("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept")
        .expect("group-by");
    println!("== GROUP BY dept, SUM(sal): tensor values, δ annotations ==");
    println!("{grouped}");

    // Deletion propagation: fire employee 3 (token p3) without
    // re-evaluating the query.
    let deleted = map_hom_mk(&grouped, &|p: &NatPoly| {
        Valuation::<NatPoly>::ones().set("p3", NatPoly::zero()).eval(p)
    });
    println!("== After deleting employee 3 (p3 ↦ 0) ==");
    println!("{deleted}");

    // Bag reading: give each employee a multiplicity and resolve.
    let bag = collapse(&map_hom_mk(&grouped, &|p: &NatPoly| {
        Valuation::<Nat>::ones().set("p1", Nat(2)).eval(p)
    }))
    .expect("fully resolved");
    println!("== Under multiplicities (p1 ↦ 2, rest 1) ==");
    println!("{bag}");

    // Nested aggregation: filter on the aggregate (paper §4). The result
    // carries symbolic equality tokens until tokens are valuated.
    let having = db
        .query("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept HAVING mass = 25")
        .expect("having");
    println!("== HAVING mass = 25: symbolic equality tokens ==");
    println!("{having}");

    let resolved = collapse(&map_hom_mk(&having, &|p: &NatPoly| {
        Valuation::<Nat>::ones().eval(p)
    }))
    .expect("resolved");
    println!("== …resolved with every token present ==");
    println!("{resolved}");
}
