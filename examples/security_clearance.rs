//! Security-annotated aggregation (paper Examples 3.5 and 3.16).
//!
//! Tuples carry clearance levels from the security semiring `S`
//! (`1s < C < S < T < 0s`). Idempotent aggregates (MIN/MAX) work directly
//! over `S`; SUM needs the security-bag semiring `SN` (§3.4), which is
//! compatible with every monoid. One symbolic result serves every
//! credential level, read off with `ResultSet::clearance`.
//!
//! Run with: `cargo run --example security_clearance`

use aggprov::core::Km;
use aggprov::engine::Database;
use aggprov_algebra::semiring::{Nat, Security};
use aggprov_algebra::sn::Sn;

fn main() {
    // ---- MAX over the security semiring (Example 3.5) -------------------
    let mut db: Database<Km<Security>> = Database::new();
    db.exec(
        "CREATE TABLE salaries (name TEXT, sal NUM);
         INSERT INTO salaries VALUES ('alice', 20) PROVENANCE S;
         INSERT INTO salaries VALUES ('bob', 10) PROVENANCE PUBLIC;
         INSERT INTO salaries VALUES ('carol', 30) PROVENANCE S;",
    )
    .expect("load");

    let top = db
        .prepare("SELECT MAX(sal) AS top FROM salaries")
        .expect("prepare")
        .execute()
        .expect("query");
    println!("== MAX(sal), symbolic over S (Example 3.5) ==");
    println!("{top}");

    for cred in [
        Security::Public,
        Security::Confidential,
        Security::Secret,
        Security::TopSecret,
    ] {
        // The fluent form of the manual `map_hom_mk` visibility view.
        let view = top.clearance(cred);
        let shown = view
            .first()
            .map(|row| row.at(0).to_string())
            .unwrap_or_else(|| "(empty)".into());
        println!("credentials {cred:>2}: MAX = {shown}");
    }

    // ---- SUM over the security-bag semiring SN (Example 3.16) -----------
    println!();
    println!("== SUM needs SN: the security-bag semiring (§3.4) ==");
    let mut db: Database<Km<Sn>> = Database::new();
    db.exec(
        "CREATE TABLE payroll (sal NUM);
         INSERT INTO payroll VALUES (30) PROVENANCE T;
         INSERT INTO payroll VALUES (30) PROVENANCE S;
         INSERT INTO payroll VALUES (10) PROVENANCE S;",
    )
    .expect("load");
    let total = db
        .prepare("SELECT SUM(sal) AS total FROM payroll")
        .expect("prepare")
        .execute()
        .expect("query");
    println!("{total}");

    for cred in [
        Security::Confidential,
        Security::Secret,
        Security::TopSecret,
    ] {
        // Each principal sees the multiplicity of the tuples they may read.
        let view = total
            .map_hom(|x: &Sn| Nat(x.multiplicity_for(cred)))
            .collapse()
            .expect("SN resolves through its ℕ homomorphism");
        let shown = view.scalar().expect("1×1 result").to_string();
        println!("credentials {cred:>2}: SUM = {shown}");
    }

    println!();
    println!(
        "note: plain S would conflate the two 30-salaries (1s⊗40 = 1s⊗70 in \
         S⊗SUM, §3.4); SN keeps counts per level, which is exactly why it \
         exists."
    );
}
