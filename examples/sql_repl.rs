//! An interactive SQL shell over a provenance-annotated database —
//! embedded by default, or speaking the wire protocol to a running
//! `aggprov-server` after `\connect`.
//!
//! ```text
//! cargo run --example sql_repl
//! sql> CREATE TABLE r (dept TEXT, sal NUM);
//! sql> INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
//! sql> SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept;
//! sql> \connect 127.0.0.1:7878
//! remote> SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept;
//! ```
//!
//! Statements end with `;`. `\q` quits, `\tables` lists tables,
//! `\connect host:port` switches to a server (queries then run against
//! the session's epoch snapshot, refreshed before each SELECT), and
//! `\local` switches back to the embedded database.

use aggprov::engine::ProvDb;
use aggprov_server::{Client, Json};
use std::io::{self, BufRead, Write};

enum Mode {
    Local(Box<ProvDb>),
    Remote(Client),
}

impl Mode {
    fn prompt(&self) -> &'static str {
        match self {
            Mode::Local(_) => "sql> ",
            Mode::Remote(_) => "remote> ",
        }
    }
}

/// Prints a wire result in the local `Relation` display style.
fn print_remote_rows(response: &Json) {
    let columns = response.get("columns").and_then(Json::as_arr).map(|cols| {
        cols.iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    });
    let Some(columns) = columns else {
        println!("ok (epoch {})", epoch_of(response));
        return;
    };
    println!("[{columns}]");
    if let Some(rows) = response.get("rows").and_then(Json::as_arr) {
        for row in rows {
            let values = row
                .get("values")
                .and_then(Json::as_arr)
                .map(|vs| {
                    vs.iter()
                        .filter_map(Json::as_str)
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            let annotation = row
                .get("annotation")
                .and_then(Json::as_str)
                .unwrap_or_default();
            println!("  ({values})  @ {annotation}");
        }
    }
}

fn epoch_of(response: &Json) -> i64 {
    response.get("epoch").and_then(Json::as_int).unwrap_or(0)
}

/// Runs one `;`-terminated statement buffer in the current mode.
fn run_statement(mode: &mut Mode, script: &str) {
    match mode {
        Mode::Local(db) => match db.exec(script) {
            Ok(Some(result)) => println!("{result}"),
            Ok(None) => println!("ok"),
            Err(e) => println!("error: {e}"),
        },
        Mode::Remote(client) => {
            // SELECTs take the read path: re-pin the snapshot, then run
            // against it lock-free. Everything else is the write path.
            let is_select = script
                .trim_start()
                .to_ascii_uppercase()
                .starts_with("SELECT");
            let outcome = if is_select {
                client
                    .refresh()
                    .and_then(|_| client.query(script.trim().trim_end_matches(';')))
            } else {
                client.sql(script)
            };
            match outcome {
                Ok(response) => print_remote_rows(&response),
                Err(e) => println!("error: {e}"),
            }
        }
    }
}

fn run_command(mode: &mut Mode, command: &str) -> bool {
    match command.split_whitespace().collect::<Vec<_>>().as_slice() {
        ["\\q"] => return false,
        ["\\tables"] => match mode {
            Mode::Local(db) => {
                for name in db.table_names() {
                    println!("{name}");
                }
            }
            Mode::Remote(client) => match client.tables() {
                Ok(tables) => {
                    for name in tables {
                        println!("{name}");
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        },
        ["\\connect", addr] => match Client::connect(*addr) {
            Ok(mut client) => match client.ping() {
                Ok(epoch) => {
                    println!("connected to {addr} (epoch {epoch})");
                    *mode = Mode::Remote(client);
                }
                Err(e) => println!("error: {e}"),
            },
            Err(e) => println!("error: cannot connect to {addr}: {e}"),
        },
        ["\\local"] => {
            println!("back to the embedded database");
            *mode = Mode::Local(Box::new(ProvDb::new()));
        }
        _ => println!("commands: \\q  \\tables  \\connect host:port  \\local"),
    }
    true
}

fn main() {
    let mut mode = Mode::Local(Box::new(ProvDb::new()));
    let stdin = io::stdin();
    let mut buffer = String::new();

    println!("aggprov SQL shell — provenance-annotated aggregation (PODS'11)");
    println!(
        "statements end with `;`; \\q quits, \\tables lists tables, \\connect host:port goes remote"
    );
    print!("{}", mode.prompt());
    io::stdout().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !run_command(&mut mode, trimmed) {
                break;
            }
            print!("{}", mode.prompt());
            io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("  -> ");
            io::stdout().flush().ok();
            continue;
        }
        run_statement(&mut mode, &buffer);
        buffer.clear();
        print!("{}", mode.prompt());
        io::stdout().flush().ok();
    }
}
