//! An interactive SQL shell over a provenance-annotated database.
//!
//! ```text
//! cargo run --example sql_repl
//! sql> CREATE TABLE r (dept TEXT, sal NUM);
//! sql> INSERT INTO r VALUES ('d1', 20) PROVENANCE p1;
//! sql> SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept;
//! ```
//!
//! Statements end with `;`. `\q` quits, `\tables` lists tables.

use aggprov::engine::ProvDb;
use std::io::{self, BufRead, Write};

fn main() {
    let mut db = ProvDb::new();
    let stdin = io::stdin();
    let mut buffer = String::new();

    println!("aggprov SQL shell — provenance-annotated aggregation (PODS'11)");
    println!("statements end with `;`; \\q quits, \\tables lists tables");
    print!("sql> ");
    io::stdout().flush().ok();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed == "\\q" {
            break;
        }
        if trimmed == "\\tables" {
            for name in db.table_names() {
                println!("{name}");
            }
            print!("sql> ");
            io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("  -> ");
            io::stdout().flush().ok();
            continue;
        }
        match db.exec(&buffer) {
            Ok(Some(result)) => println!("{result}"),
            Ok(None) => println!("ok"),
            Err(e) => println!("error: {e}"),
        }
        buffer.clear();
        print!("sql> ");
        io::stdout().flush().ok();
    }
}
