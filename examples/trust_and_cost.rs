//! One stored provenance result, many application readings.
//!
//! The factorization property (paper §1/§2.1): any semiring-annotation
//! semantics factors through the provenance polynomials. This example
//! prepares and evaluates an aggregate query once over `ℕ[X]^M` and then
//! reads the same `ResultSet` under three different application semirings:
//!
//! * **Viterbi** (`[0,1], max, ×`): how confident are we in each group sum,
//!   given per-source confidence?
//! * **Tropical** (`ℕ∪{∞}, min, +`): what does it cost to obtain it, given
//!   per-source access costs?
//! * **Why-provenance**: which sources does it depend on at all?
//!
//! Run with: `cargo run --example trust_and_cost`

use aggprov::engine::ProvDb;
use aggprov_algebra::hierarchy::to_lineage;
use aggprov_algebra::hom::Valuation;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{Tropical, Viterbi};

fn main() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE readings (sensor TEXT, region TEXT, temp NUM);
         INSERT INTO readings VALUES ('s1', 'north', 20) PROVENANCE src1;
         INSERT INTO readings VALUES ('s2', 'north', 22) PROVENANCE src2;
         INSERT INTO readings VALUES ('s3', 'south', 31) PROVENANCE src3;
         INSERT INTO readings VALUES ('s4', 'south', 29) PROVENANCE src1;",
    )
    .expect("load sensor data");

    let result = db
        .prepare("SELECT region, MAX(temp) AS peak FROM readings GROUP BY region")
        .expect("prepare")
        .execute()
        .expect("query");
    println!("== symbolic result (evaluated once) ==");
    println!("{result}");

    // Reading 1: confidence. src1 is flaky (0.5), the rest are good.
    let confidence = Valuation::<Viterbi>::ones()
        .set("src1", Viterbi::ratio(1, 2))
        .set("src2", Viterbi::ratio(9, 10))
        .set("src3", Viterbi::ratio(9, 10));
    println!("== Viterbi reading: confidence of each group ==");
    println!("{}", result.valuate(&confidence));

    // Reading 2: cost. Fetching from src2 is expensive.
    let cost = Valuation::<Tropical>::ones()
        .set("src1", Tropical::Fin(1))
        .set("src2", Tropical::Fin(10))
        .set("src3", Tropical::Fin(2));
    println!("== tropical reading: cost to obtain each group ==");
    println!("{}", result.valuate(&cost));

    // Reading 3: lineage — which sources each group depends on. Valuating
    // each token to its own lineage singleton pushes the whole annotation
    // (δ included — identity on this idempotent semiring) down the
    // hierarchy.
    println!("== lineage reading: which sources matter per group ==");
    println!("{}", result.map_hom(|p: &NatPoly| to_lineage(p)));
}
