//! # aggprov — Provenance for Aggregate Queries
//!
//! A Rust implementation of the framework of **Amsterdamer, Deutch & Tannen,
//! "Provenance for Aggregate Queries" (PODS 2011)**: semiring-annotated
//! relations extended with aggregation, where aggregate *values* are elements
//! of a tensor product `K ⊗ M` of the annotation semiring `K` and the
//! aggregation monoid `M`, nested aggregation is handled by the extended
//! semiring `K^M` with symbolic equality tokens, and relational difference is
//! obtained by encoding it with aggregation over the monoid `B̂`.
//!
//! This crate is a façade that re-exports the workspace crates:
//!
//! * [`algebra`] — monoids, semirings, provenance polynomials `ℕ[X]`,
//!   homomorphisms, semimodules and the tensor product `K ⊗ M`.
//! * [`krel`] — `K`-relations and the positive relational algebra (SPJU) of
//!   Green, Karvounarakis & Tannen (PODS 2007), plus baseline difference
//!   semantics and an unannotated reference evaluator.
//! * [`core`] — the paper's contribution: aggregation and group-by on
//!   annotated relations (§3), the extended semiring `K^M` and nested
//!   aggregation (§4), difference via aggregation (§5), and the naive
//!   exponential baselines of §1.
//! * [`engine`] — a small SQL front-end (parser, planner, executor) over
//!   annotated databases.
//! * [`workloads`] — synthetic data and query generators for the experiments.
//!
//! ## Quick start
//!
//! Evaluate once, interrogate many times: prepare a query, execute it, and
//! read the one symbolic result under as many valuations as you like.
//!
//! ```
//! use aggprov::prelude::*;
//!
//! // Build the relation of Figure 1(a), annotated with provenance tokens.
//! let mut db = Database::<Prov>::new();
//! db.exec(
//!     "CREATE TABLE r (emp TEXT, dept TEXT, sal NUM);
//!      INSERT INTO r VALUES ('e1', 'd1', 20) PROVENANCE p1;
//!      INSERT INTO r VALUES ('e2', 'd1', 10) PROVENANCE p2;
//!      INSERT INTO r VALUES ('e3', 'd2', 15) PROVENANCE p3;",
//! )
//! .unwrap();
//!
//! // Prepare once: parsing, name resolution and planning happen here.
//! let totals = db
//!     .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept")
//!     .unwrap();
//!
//! // Execute: the aggregate values are tensors over the tokens.
//! let out = totals.execute().unwrap();
//! assert_eq!(out.len(), 2);
//!
//! // Interrogate the stored result — no re-evaluation:
//! let fired = out.delete_tokens(["p2"]);                       // deletion propagation
//! let plain = out.valuate(&Valuation::<Nat>::ones()).collapse().unwrap();
//! assert_eq!(plain.rows().next().unwrap().get("total").unwrap().to_string(), "30");
//! assert_eq!(fired.len(), 2);
//!
//! // Parameterized reuse of the same plan:
//! let by_dept = db.prepare("SELECT sal FROM r WHERE dept = $1").unwrap();
//! assert_eq!(by_dept.execute_with(&[Const::str("d1")]).unwrap().len(), 2);
//! assert_eq!(by_dept.execute_with(&[Const::str("d2")]).unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(missing_debug_implementations)]

pub use aggprov_algebra as algebra;
pub use aggprov_core as core;
pub use aggprov_engine as engine;
pub use aggprov_krel as krel;
pub use aggprov_workloads as workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use aggprov_algebra::domain::Const;
    pub use aggprov_algebra::hom::{SemiringHom, Valuation};
    pub use aggprov_algebra::monoid::{CommutativeMonoid, MonoidKind};
    pub use aggprov_algebra::num::Num;
    pub use aggprov_algebra::poly::{NatPoly, Var};
    pub use aggprov_algebra::semiring::{Bool, CommutativeSemiring, Nat};
    pub use aggprov_algebra::tensor::Tensor;
    pub use aggprov_core::km::Km;
    pub use aggprov_core::par::ExecOptions;
    pub use aggprov_core::value::Value;
    pub use aggprov_engine::{Database, Prepared, ResultSet, Row};

    /// A database tracking full aggregate provenance.
    pub use aggprov_engine::ProvDb;

    /// The standard provenance annotation: the extended semiring
    /// `ℕ[X]^M` over provenance polynomials.
    pub type Prov = aggprov_core::km::Km<aggprov_algebra::poly::NatPoly>;
}
