//! The paper's central theorem, mechanized: **query evaluation commutes
//! with semiring homomorphisms** (Theorem 3.3 for SPJU-AGB, extended to the
//! §4.3 semantics and the §5 difference).
//!
//! For random query plans `Q`, random token-annotated databases `D` and
//! random valuations `h`: `Q(h_Rel(D)) = h_Rel(Q(D))`.

use aggprov::core::eval::{collapse, map_hom_mk, specialize};
use aggprov::core::ops::MKRel;
use aggprov::core::Km;
use aggprov::workloads::plans::{eval_mk, random_plan};
use aggprov::workloads::randrel::{
    random_bool_valuation, random_nat_valuation, random_prov_tables,
};
use aggprov_algebra::semiring::{Bool, Nat, Security};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn commutes_with_valuations_into_nat() {
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..60 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 5);
        let plan = random_plan(&mut rng, 2, 2);
        let val = random_nat_valuation(&mut rng, &tokens);

        // h first, then Q.
        let specialized: Vec<MKRel<Km<Nat>>> = tables.iter().map(|t| specialize(t, &val)).collect();
        let lhs = eval_mk(&plan, &specialized).expect("eval after hom");

        // Q first, then h.
        let symbolic = eval_mk(&plan, &tables).expect("symbolic eval");
        let rhs = map_hom_mk(&symbolic, &|p| val.eval(p));

        let lhs = collapse(&lhs).expect("ℕ results are token-free");
        let rhs = collapse(&rhs).expect("ℕ results are token-free");
        assert_eq!(lhs, rhs, "round {round}, plan {plan:?}");
    }
}

#[test]
fn commutes_with_valuations_into_bool() {
    // Set semantics: restrict to SUM-free plans (B is incompatible with
    // SUM, §3.4 — with SUM the results are not ι-readable).
    let mut rng = StdRng::seed_from_u64(7);
    let mut tested = 0;
    while tested < 40 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 5);
        let plan = random_plan(&mut rng, 2, 2);
        if plan.uses_sum() {
            continue;
        }
        tested += 1;
        let val = random_bool_valuation(&mut rng, &tokens);

        let specialized: Vec<MKRel<Km<Bool>>> =
            tables.iter().map(|t| specialize(t, &val)).collect();
        let lhs = collapse(&eval_mk(&plan, &specialized).expect("eval after hom"))
            .expect("B results are token-free");
        let symbolic = eval_mk(&plan, &tables).expect("symbolic eval");
        let rhs =
            collapse(&map_hom_mk(&symbolic, &|p| val.eval(p))).expect("B results are token-free");
        assert_eq!(lhs, rhs, "plan {plan:?}");
    }
}

#[test]
fn commutes_with_composed_homomorphisms() {
    // Factorization: valuating into ℕ and then dropping to B equals
    // valuating into B directly, on whole query results.
    let mut rng = StdRng::seed_from_u64(99);
    let mut tested = 0;
    while tested < 25 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 4);
        let plan = random_plan(&mut rng, 2, 2);
        if plan.uses_sum() {
            continue;
        }
        tested += 1;
        let nat_val = random_nat_valuation(&mut rng, &tokens);
        let symbolic = eval_mk(&plan, &tables).expect("symbolic eval");

        let via_nat = map_hom_mk(&map_hom_mk(&symbolic, &|p| nat_val.eval(p)), &|n: &Nat| {
            Bool(n.0 > 0)
        });
        let bool_val =
            aggprov_algebra::hom::Valuation::<Bool>::ones().set_all(tokens.iter().map(|t| {
                let var = aggprov_algebra::poly::Var::new(t);
                let b = Bool(nat_val.get(&var).0 > 0);
                (var, b)
            }));
        let direct = map_hom_mk(&symbolic, &|p| bool_val.eval(p));
        assert_eq!(
            collapse(&via_nat).unwrap(),
            collapse(&direct).unwrap(),
            "plan {plan:?}"
        );
    }
}

#[test]
fn commutes_with_security_specializations() {
    // Example 3.5 at scale: assigning clearances commutes with MIN/MAX
    // queries.
    let mut rng = StdRng::seed_from_u64(5);
    let levels = [
        Security::Public,
        Security::Confidential,
        Security::Secret,
        Security::TopSecret,
    ];
    let mut tested = 0;
    while tested < 25 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 4);
        let plan = random_plan(&mut rng, 2, 1);
        if plan.uses_sum() {
            continue;
        }
        tested += 1;
        let val =
            aggprov_algebra::hom::Valuation::<Security>::ones().set_all(tokens.iter().map(|t| {
                (
                    aggprov_algebra::poly::Var::new(t),
                    levels[rng.random_range(0..levels.len())],
                )
            }));
        let specialized: Vec<MKRel<Km<Security>>> =
            tables.iter().map(|t| specialize(t, &val)).collect();
        let lhs = eval_mk(&plan, &specialized).expect("eval after hom");
        let symbolic = eval_mk(&plan, &tables).expect("symbolic eval");
        let rhs = map_hom_mk(&symbolic, &|p| val.eval(p));
        assert_eq!(lhs, rhs, "plan {plan:?}");
    }
}
