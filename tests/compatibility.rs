//! Set/bag compatibility (desideratum 1, paper §3.1/§3.4): the annotated
//! semantics specialized to `K = ℕ` must behave exactly like a plain bag
//! engine, and specialized to `K = B` (for idempotent aggregations) like a
//! plain set engine. The reference engine shares no code with the annotated
//! operators.

use aggprov::core::eval::{collapse, map_hom_mk, read_off_bag, read_off_set};
use aggprov::workloads::plans::{eval_bag, eval_mk, random_plan};
use aggprov::workloads::randrel::{
    random_bool_valuation, random_nat_valuation, random_prov_tables, to_bag,
};
use aggprov_algebra::semiring::Nat;
use aggprov_krel::reference::BagRel;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn bag_compatibility_against_reference_engine() {
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..80 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 5);
        let plan = random_plan(&mut rng, 2, 2);
        let val = random_nat_valuation(&mut rng, &tokens);

        let annotated = eval_mk(&plan, &tables).expect("symbolic eval");
        let ours =
            read_off_bag(&collapse(&map_hom_mk(&annotated, &|p| val.eval(p))).expect("collapse"))
                .expect("read-off");

        let bags: Vec<BagRel> = tables.iter().map(|t| to_bag(t, &val)).collect();
        let reference = eval_bag(&plan, &bags);

        assert_eq!(
            ours.sorted_rows(),
            reference.sorted_rows(),
            "round {round}, plan {plan:?}"
        );
    }
}

#[test]
fn set_compatibility_against_reference_engine() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut tested = 0;
    while tested < 60 {
        let (tables, tokens) = random_prov_tables(&mut rng, 2, 5);
        let plan = random_plan(&mut rng, 2, 2);
        if plan.uses_sum() {
            continue; // B is incompatible with SUM (§3.4).
        }
        tested += 1;
        let val = random_bool_valuation(&mut rng, &tokens);

        let annotated = eval_mk(&plan, &tables).expect("symbolic eval");
        let ours =
            read_off_set(&collapse(&map_hom_mk(&annotated, &|p| val.eval(p))).expect("collapse"))
                .expect("read-off");

        // Reference: run the bag engine over 0/1-multiplicity inputs and
        // eliminate duplicates at the end — equivalent for SUM-free plans
        // (MIN/MAX ignore duplicates, groups appear once either way).
        let nat_like =
            aggprov_algebra::hom::Valuation::<Nat>::ones().set_all(tokens.iter().map(|t| {
                let var = aggprov_algebra::poly::Var::new(t);
                let n = Nat(u64::from(val.get(&var).0));
                (var, n)
            }));
        let bags: Vec<BagRel> = tables.iter().map(|t| to_bag(t, &nat_like)).collect();
        let reference = eval_bag(&plan, &bags).distinct();

        assert_eq!(ours.sorted_rows(), reference.sorted_rows(), "plan {plan:?}");
    }
}
