//! Proposition 5.1 and Lemma 5.2, randomized: the aggregation *encoding* of
//! difference and the direct hybrid semantics agree under every
//! homomorphism into a semiring where `ι : B̂ → K ⊗ B̂` is an isomorphism
//! (`ℕ`, `B`), and the difference guard `[S(t)⊗⊤ = 0]` reads as
//! "t is absent from S".

use aggprov::algebra::domain::Const;
use aggprov::algebra::hom::Valuation;
use aggprov::algebra::monoid::MonoidKind;
use aggprov::algebra::poly::NatPoly;
use aggprov::algebra::semiring::{Bool, Nat};
use aggprov::algebra::tensor::Tensor;
use aggprov::core::difference::{difference, difference_encoded};
use aggprov::core::eval::{collapse, map_hom_mk};
use aggprov::core::ops::MKRel;
use aggprov::core::{AggAnnotation, Km, Prov, Value};
use aggprov_krel::relation::Relation;
use aggprov_krel::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_pair(rng: &mut StdRng) -> (MKRel<Prov>, MKRel<Prov>, Vec<String>) {
    let schema = Schema::new(["x", "y"]).unwrap();
    let mut tokens = Vec::new();
    let build = |prefix: &str, rng: &mut StdRng, tokens: &mut Vec<String>| {
        let mut rel = Relation::empty(schema.clone());
        for i in 0..rng.random_range(1..6) {
            let token = format!("{prefix}{i}");
            rel.insert(
                vec![
                    Value::int(rng.random_range(0..3)),
                    Value::int(rng.random_range(0..3)),
                ],
                Km::embed(NatPoly::token(&token)),
            )
            .unwrap();
            tokens.push(token);
        }
        rel
    };
    let r = build("r", rng, &mut tokens);
    let s = build("s", rng, &mut tokens);
    (r, s, tokens)
}

#[test]
fn encoded_equals_direct_under_nat_valuations() {
    let mut rng = StdRng::seed_from_u64(3);
    for round in 0..25 {
        let (r, s, tokens) = random_pair(&mut rng);
        let direct = difference(&r, &s).unwrap();
        let encoded = difference_encoded(&r, &s).unwrap();
        for _ in 0..4 {
            let val = Valuation::<Nat>::ones().set_all(tokens.iter().map(|t| {
                (
                    aggprov::algebra::poly::Var::new(t),
                    Nat(rng.random_range(0..3)),
                )
            }));
            let d = collapse(&map_hom_mk(&direct, &|p| val.eval(p))).unwrap();
            let e = collapse(&map_hom_mk(&encoded, &|p| val.eval(p))).unwrap();
            assert_eq!(d, e, "round {round}");
        }
    }
}

#[test]
fn encoded_equals_direct_under_bool_valuations() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..25 {
        let (r, s, tokens) = random_pair(&mut rng);
        let direct = difference(&r, &s).unwrap();
        let encoded = difference_encoded(&r, &s).unwrap();
        let val = Valuation::<Bool>::ones().set_all(tokens.iter().map(|t| {
            (
                aggprov::algebra::poly::Var::new(t),
                Bool(rng.random_bool(0.6)),
            )
        }));
        let d = collapse(&map_hom_mk(&direct, &|p| val.eval(p))).unwrap();
        let e = collapse(&map_hom_mk(&encoded, &|p| val.eval(p))).unwrap();
        assert_eq!(d, e);
    }
}

#[test]
fn lemma_5_2_guard_reads_absence() {
    // h^M([S(t)⊗⊤ = 0]) = ⊤ iff h(S(t)) = ⊥, for homs into B.
    let m = MonoidKind::Or;
    let s_ann = Km::embed(NatPoly::token("s"));
    let guard = <Prov as AggAnnotation>::eq_token(
        m,
        &Tensor::simple(&m, s_ann, Const::Bool(true)),
        &Tensor::zero(),
    )
    .unwrap();
    for present in [false, true] {
        let resolved = guard
            .map_hom(&|p: &NatPoly| Valuation::<Bool>::ones().set("s", Bool(present)).eval(p))
            .try_collapse()
            .unwrap();
        assert_eq!(resolved, Bool(!present));
    }
}

#[test]
fn hybrid_difference_is_boolean_in_s_but_bag_in_r() {
    // The semantics' signature property, on concrete bags: survivors keep
    // their R-multiplicity; any presence in S (whatever multiplicity)
    // removes the tuple.
    let schema = Schema::new(["x"]).unwrap();
    let r: MKRel<Nat> = Relation::from_rows(
        schema.clone(),
        [(vec![Value::int(1)], Nat(5)), (vec![Value::int(2)], Nat(2))],
    )
    .unwrap();
    for s_mult in [1u64, 2, 9] {
        let s: MKRel<Nat> =
            Relation::from_rows(schema.clone(), [(vec![Value::int(1)], Nat(s_mult))]).unwrap();
        let d = difference(&r, &s).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.annotation(&aggprov_krel::relation::Tuple::from([Value::int(2)])),
            Nat(2),
            "survivor keeps multiplicity"
        );
    }
}

#[test]
fn minus_union_self_holds_symbolically() {
    // Proposition 5.5's positive half at the *symbolic* level: the guards
    // [(b+b)⊗⊤ = 0] and [b⊗⊤ = 0] are the same token because coefficients
    // of idempotent monoid elements are canonical up to k ~ k+k (the
    // idem_normal quotient) — so A − (B ∪ B) ≡ A − B structurally over
    // ℕ[X]^M, before any valuation.
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..20 {
        let (a, b, _) = random_pair(&mut rng);
        let bb = aggprov::core::ops::union(&b, &b).unwrap();
        let lhs = difference(&a, &bb).unwrap();
        let rhs = difference(&a, &b).unwrap();
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn union_minus_fails_symbolically_with_witness() {
    // …while (A ∪ B) − B ≢ A (Prop 5.5's negative half): a concrete
    // witness where the hybrid semantics vetoes tuples of A.
    let schema = Schema::new(["x"]).unwrap();
    let a: MKRel<Prov> = Relation::from_rows(
        schema.clone(),
        [(vec![Value::int(1)], Km::embed(NatPoly::token("a1")))],
    )
    .unwrap();
    let b: MKRel<Prov> = Relation::from_rows(
        schema,
        [(vec![Value::int(1)], Km::embed(NatPoly::token("b1")))],
    )
    .unwrap();
    let lhs = difference(&aggprov::core::ops::union(&a, &b).unwrap(), &b).unwrap();
    assert_ne!(lhs, a, "the guard [b1⊗⊤ = 0] persists on x = 1");
    // And under b1 ↦ 1 the tuple disappears although A contains it.
    let resolved = collapse(&map_hom_mk(&lhs, &|p: &NatPoly| {
        Valuation::<Nat>::ones().eval(p)
    }))
    .unwrap();
    assert!(resolved.is_empty());
}
