//! Robustness of the SQL front-end: the parser never panics on arbitrary
//! input, and engine-level queries over a bag database agree with the
//! reference evaluator.

use aggprov::core::eval::read_off_bag;
use aggprov::engine::Database;
use aggprov::workloads::org::{org, OrgParams};
use aggprov_algebra::monoid::MonoidKind;
use aggprov_algebra::semiring::Nat;
use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = aggprov::engine::parser::parse_script(&input);
    }

    #[test]
    fn lexer_never_panics(input in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(s) = std::str::from_utf8(&input) {
            let _ = aggprov::engine::lexer::lex(s);
        }
    }

    #[test]
    fn structured_garbage_parses_or_errors(
        kw in prop::sample::select(vec!["SELECT", "FROM", "WHERE", "GROUP", "INSERT", "SUM"]),
        ident in "[a-z]{1,6}",
        n in -100i64..100,
    ) {
        let attempts = [
            format!("{kw} {ident} {n}"),
            format!("SELECT {ident} FROM {ident} WHERE {ident} = {n}"),
            format!("SELECT SUM({ident}) FROM {ident} GROUP BY {ident}"),
            format!("{ident} {kw} ("),
        ];
        for sql in attempts {
            let _ = aggprov::engine::parser::parse_script(&sql);
        }
    }
}

#[test]
fn engine_sql_matches_reference_on_bag_database() {
    // Load the org workload into a bag database (every token ↦ 1) and run a
    // battery of SQL queries, comparing with the hand-rolled reference.
    let o = org(OrgParams {
        departments: 5,
        employees_per_dept: 8,
        ..Default::default()
    });
    let mut db: Database<Nat> = Database::new();
    db.register("emp", aggprov::core::eval::map_mk(&o.emp, &|_| Nat(1)));
    db.register("dept", aggprov::core::eval::map_mk(&o.dept, &|_| Nat(1)));

    // Q1: group-by sum.
    let ours = read_off_bag(
        &db.query("SELECT dept, SUM(sal) AS sal FROM emp GROUP BY dept")
            .unwrap(),
    )
    .unwrap();
    let reference = o.emp_bag.group_aggregate(&["dept"], MonoidKind::Sum, "sal");
    assert_eq!(ours.sorted_rows(), reference.sorted_rows());

    // Q2: selection + projection.
    let ours = read_off_bag(&db.query("SELECT emp FROM emp WHERE dept = 'd1'").unwrap()).unwrap();
    let reference = o
        .emp_bag
        .select_eq("dept", &aggprov_algebra::domain::Const::str("d1"))
        .project(&["emp"]);
    assert_eq!(ours.sorted_rows(), reference.sorted_rows());

    // Q3: join + group-by max per region.
    let ours = read_off_bag(
        &db.query(
            "SELECT d.region, MAX(e.sal) AS sal FROM emp e JOIN dept d \
             ON e.dept = d.dept GROUP BY d.region",
        )
        .unwrap(),
    )
    .unwrap();
    let mut reference =
        o.emp_bag
            .natural_join(&o.dept_bag)
            .group_aggregate(&["region"], MonoidKind::Max, "sal");
    reference.attrs = vec!["region".into(), "sal".into()];
    assert_eq!(ours.sorted_rows(), reference.sorted_rows());

    // Q4: HAVING over a bag database resolves eagerly.
    let ours = read_off_bag(
        &db.query("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING n = 8")
            .unwrap(),
    )
    .unwrap();
    assert_eq!(ours.rows.len(), 5, "all departments have 8 employees");

    // Q5: EXCEPT (hybrid difference).
    let ours = read_off_bag(
        &db.query("SELECT dept FROM emp EXCEPT SELECT dept FROM dept WHERE region = 'region0'")
            .unwrap(),
    )
    .unwrap();
    let closed: Vec<&str> = vec!["d0", "d4"]; // departments in region0 (d % 4 == 0)
    for row in &ours.rows {
        let d = row[0].as_str().unwrap();
        assert!(!closed.contains(&d), "{d} should be excluded");
    }
    // Survivors keep their bag multiplicity (8 each: d1, d2, d3).
    assert_eq!(ours.rows.len(), 24);
}
