//! `AGGPROV_THREADS` handling end to end, isolated in its own test binary:
//! the variable is process-global and every `Prepared::execute` reads it,
//! so mutating it must not share a process with the rest of the test
//! suite.

use aggprov::prelude::*;

fn figure_1_db() -> ProvDb {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd2', 15) PROVENANCE p3;",
    )
    .unwrap();
    db
}

// AGGPROV_THREADS drives Prepared::execute through ExecOptions::from_env;
// a bad value surfaces as the loud InvalidEnv error. This is the only
// test in this binary touching the variable, and it restores the prior
// value (the CI thread matrix sets it for the whole test run).
#[test]
fn execute_reads_aggprov_threads_loudly() {
    let saved = std::env::var("AGGPROV_THREADS").ok();
    std::env::set_var("AGGPROV_THREADS", "not-a-number");
    let db = figure_1_db();
    let err = db
        .prepare("SELECT dept FROM r")
        .unwrap()
        .execute()
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("AGGPROV_THREADS") && msg.contains("`not-a-number`"),
        "loud error names variable and value: {msg}"
    );
    std::env::set_var("AGGPROV_THREADS", "2");
    assert!(db.prepare("SELECT dept FROM r").unwrap().execute().is_ok());
    match saved {
        Some(v) => std::env::set_var("AGGPROV_THREADS", v),
        None => std::env::remove_var("AGGPROV_THREADS"),
    }
}
