//! The impossibility results, mechanized (Propositions 3.1, 3.2 and 4.2).
//!
//! No tuple-level `K`-relation semantics for aggregation can be both
//! set/bag-compatible and commute with homomorphisms. The proof hinges on a
//! monotonicity obstruction: any algebraically uniform annotation is a
//! polynomial `p(x, y) ∈ ℕ[X]`, functions defined by such polynomials on
//! `B` are monotone, yet compatibility forces `p(⊤,⊤) = ⊥` and
//! `p(⊤,⊥) = ⊤`. We verify the monotonicity lemma by property testing, the
//! forced requirements from the paper's scenario, and that the tensor
//! semantics dissolves the obstruction.

use aggprov::algebra::domain::Const;
use aggprov::algebra::hom::Valuation;
use aggprov::algebra::monoid::MonoidKind;
use aggprov::algebra::poly::{Monomial, NatPoly, Poly, Var};
use aggprov::algebra::semiring::{Bool, Nat};
use aggprov::algebra::tensor::Tensor;
use proptest::prelude::*;

fn arb_poly() -> impl Strategy<Value = NatPoly> {
    prop::collection::vec(
        (
            prop::collection::vec((prop::sample::select(vec!["x", "y"]), 1u32..3), 0..3),
            0u64..4,
        ),
        0..5,
    )
    .prop_map(|terms| {
        Poly::from_terms(terms.into_iter().map(|(m, c)| {
            (
                Monomial::from_pairs(m.into_iter().map(|(v, e)| (Var::new(v), e))),
                Nat(c),
            )
        }))
    })
}

proptest! {
    /// Lemma: polynomial functions on B are monotone in each variable.
    #[test]
    fn polynomials_on_bool_are_monotone(p in arb_poly()) {
        let eval = |x: bool, y: bool| {
            Valuation::<Bool>::ones()
                .set("x", Bool(x))
                .set("y", Bool(y))
                .eval(&p)
        };
        // Raising an input never lowers the output.
        prop_assert!(eval(true, true) >= eval(true, false));
        prop_assert!(eval(true, true) >= eval(false, true));
        prop_assert!(eval(true, false) >= eval(false, false));
        prop_assert!(eval(false, true) >= eval(false, false));
    }

    /// Proposition 3.2's contradiction: no polynomial annotation for the
    /// MAX-aggregation answer tuple (value 10) satisfies both required
    /// specializations: h′(x,y ↦ ⊤,⊤) must erase the tuple (the max is 20)
    /// while h″(x,y ↦ ⊤,⊥) must keep it.
    #[test]
    fn no_annotation_satisfies_both_homomorphisms(p in arb_poly()) {
        let eval = |x: bool, y: bool| {
            Valuation::<Bool>::ones()
                .set("x", Bool(x))
                .set("y", Bool(y))
                .eval(&p)
        };
        prop_assert!(
            !(eval(true, true) == Bool(false) && eval(true, false) == Bool(true)),
            "a tuple-level annotation would have to be non-monotone"
        );
    }
}

#[test]
fn tensor_values_dissolve_the_obstruction() {
    // The same scenario through the paper's construction: the aggregate
    // value x⊗10 + y⊗20 (a value, not a tuple annotation) answers both
    // specializations correctly.
    let m = MonoidKind::Max;
    let t = Tensor::<NatPoly, Const>::from_terms(
        &m,
        [
            (NatPoly::token("x"), Const::int(10)),
            (NatPoly::token("y"), Const::int(20)),
        ],
    );
    let specialize = |x: bool, y: bool| {
        t.map_coeffs(&m, &mut |p| {
            Valuation::<Bool>::ones()
                .set("x", Bool(x))
                .set("y", Bool(y))
                .eval(p)
        })
        .try_resolve(&m)
    };
    assert_eq!(specialize(true, true), Some(Const::int(20)));
    assert_eq!(specialize(true, false), Some(Const::int(10)));
    assert_eq!(
        specialize(false, false),
        Some(Const::Num(aggprov::algebra::num::Num::NegInf)),
        "max over nothing is −∞ (= 0_MAX)"
    );
}

#[test]
fn proposition_4_2_scenario_resolves_non_monotonically() {
    // Example 4.1: the selection "summed salary = 20" keeps the d1 group
    // iff r1 ↦ 1, r2 ↦ 0 — adding r2 *removes* the tuple. Tuple-level
    // polynomial annotations cannot express this; the K^M token can.
    use aggprov::core::Km;
    type P = Km<NatPoly>;
    let m = MonoidKind::Sum;
    let lhs = Tensor::<P, Const>::from_terms(
        &m,
        [
            (Km::embed(NatPoly::token("r1")), Const::int(20)),
            (Km::embed(NatPoly::token("r2")), Const::int(10)),
        ],
    );
    let token = P::eq_token(m, &lhs, &Tensor::iota(&m, Const::int(20)));
    let at = |r1: u64, r2: u64| {
        token
            .map_hom(&|p: &NatPoly| {
                Valuation::<Nat>::ones()
                    .set("r1", Nat(r1))
                    .set("r2", Nat(r2))
                    .eval(p)
            })
            .try_collapse()
            .unwrap()
    };
    assert_eq!(at(1, 0), Nat(1), "r1 alone: 20 = 20");
    assert_eq!(at(1, 1), Nat(0), "adding r2 removes the tuple");
    assert_eq!(at(2, 0), Nat(0), "doubling r1 removes it too: 40 ≠ 20");
    assert_eq!(at(0, 2), Nat(1), "two copies of r2: 20 = 20");
}
