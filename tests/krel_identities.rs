//! The equational laws of the positive K-relational algebra (Green et al.,
//! PODS 2007 — the "desired equivalences" the paper's footnote 9 says
//! justify semirings, as semimodule laws justify aggregation): union is
//! associative/commutative, join distributes over union, join is
//! associative/commutative, projection commutes with union. These are the
//! identities that make annotated query optimization sound.

use aggprov::algebra::poly::NatPoly;
use aggprov::krel::relation::Relation;
use aggprov::krel::schema::Schema;
use aggprov_algebra::domain::Const;
use aggprov_algebra::semiring::CommutativeSemiring;
use proptest::prelude::*;

type Rel = Relation<NatPoly, Const>;

fn rel(prefix: &str, attrs: &[&str]) -> impl Strategy<Value = Rel> + use<> {
    let schema = Schema::new(attrs.iter().copied()).unwrap();
    let arity = attrs.len();
    let prefix = prefix.to_string();
    prop::collection::vec(prop::collection::vec(0i64..3, arity..=arity), 0..5).prop_map(
        move |rows| {
            let mut out = Relation::empty(schema.clone());
            for (i, row) in rows.into_iter().enumerate() {
                out.insert(
                    row.into_iter().map(Const::int).collect::<Vec<_>>(),
                    NatPoly::token(&format!("{prefix}{i}")),
                )
                .unwrap();
            }
            out
        },
    )
}

proptest! {
    #[test]
    fn union_is_associative_and_commutative(
        a in rel("a", &["x", "y"]),
        b in rel("b", &["x", "y"]),
        c in rel("c", &["x", "y"]),
    ) {
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        prop_assert_eq!(
            a.union(&b.union(&c).unwrap()).unwrap(),
            a.union(&b).unwrap().union(&c).unwrap()
        );
        let empty = Relation::empty(a.schema().clone());
        prop_assert_eq!(a.union(&empty).unwrap(), a);
    }

    #[test]
    fn join_distributes_over_union(
        a in rel("a", &["x", "y"]),
        b in rel("b", &["x", "y"]),
        s in rel("s", &["y", "z"]),
    ) {
        let lhs = a.union(&b).unwrap().natural_join(&s).unwrap();
        let rhs = a
            .natural_join(&s)
            .unwrap()
            .union(&b.natural_join(&s).unwrap())
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn join_is_associative_and_commutative_up_to_schema(
        a in rel("a", &["x", "y"]),
        b in rel("b", &["y", "z"]),
        c in rel("c", &["z", "w"]),
    ) {
        // Commutativity up to column order: compare after projecting to a
        // common order.
        let ab = a.natural_join(&b).unwrap();
        let ba = b.natural_join(&a).unwrap();
        prop_assert_eq!(
            ab.project(&["x", "y", "z"]).unwrap(),
            ba.project(&["x", "y", "z"]).unwrap()
        );
        let a_bc = a.natural_join(&b.natural_join(&c).unwrap()).unwrap();
        let ab_c = a.natural_join(&b).unwrap().natural_join(&c).unwrap();
        prop_assert_eq!(a_bc, ab_c);
    }

    #[test]
    fn projection_commutes_with_union(
        a in rel("a", &["x", "y"]),
        b in rel("b", &["x", "y"]),
    ) {
        prop_assert_eq!(
            a.union(&b).unwrap().project(&["x"]).unwrap(),
            a.project(&["x"])
                .unwrap()
                .union(&b.project(&["x"]).unwrap())
                .unwrap()
        );
    }

    #[test]
    fn selection_commutes_with_join(
        a in rel("a", &["x", "y"]),
        s in rel("s", &["y", "z"]),
        v in 0i64..3,
    ) {
        // σ_{x=v}(A ⋈ S) = σ_{x=v}(A) ⋈ S (the predicate touches only A).
        let lhs = a
            .natural_join(&s)
            .unwrap()
            .select_eq("x", &Const::int(v))
            .unwrap();
        let rhs = a
            .select_eq("x", &Const::int(v))
            .unwrap()
            .natural_join(&s)
            .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn annotations_are_polynomial_in_inputs(a in rel("a", &["x", "y"])) {
        // Every output annotation of a self-join is a polynomial over the
        // input tokens with only {+, ·} — algebraic uniformity (Prop 3.1).
        let j = a.natural_join(&a.rename("x", "x2").unwrap()).unwrap();
        for (_, k) in j.iter() {
            prop_assert!(!k.is_zero());
            prop_assert!(k.degree() <= 2, "self-join annotations are quadratic");
        }
    }
}
