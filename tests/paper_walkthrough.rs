//! Every figure and worked example of the paper, reproduced end-to-end
//! through the SQL engine (experiments E1, E3–E6 of DESIGN.md).

use aggprov::algebra::hom::Valuation;
use aggprov::algebra::poly::NatPoly;
use aggprov::algebra::semiring::{CommutativeSemiring, Nat, Security};
use aggprov::algebra::sn::Sn;
use aggprov::core::eval::{collapse, map_hom_mk};
use aggprov::core::{Km, Value};
use aggprov::engine::{Database, ProvDb};
use aggprov_krel::relation::Tuple;

/// Figure 1(a): the employee relation with tokens p1..p3, r1, r2.
fn figure_1_db() -> ProvDb {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
         INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
         INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
    )
    .unwrap();
    db
}

#[test]
fn figure_1_projection_and_deletions() {
    let db = figure_1_db();
    let out = db.query("SELECT dept FROM r").unwrap();
    // Figure 1(b).
    let ann = |d: &str| {
        out.annotation(&Tuple::from([Value::str(d)]))
            .try_collapse()
            .unwrap()
            .to_string()
    };
    assert_eq!(ann("d1"), "p1 + p2 + p3");
    assert_eq!(ann("d2"), "r1 + r2");

    // Deleting EmpId 3 and 5 (p3 = r2 = 0) keeps both depts; also deleting
    // EmpId 4 (r1 = 0) drops d2 — exactly the paper's narrative.
    let del = |tokens: &[&str]| {
        let val = Valuation::<Nat>::ones().set_all(
            tokens
                .iter()
                .map(|t| (aggprov::algebra::poly::Var::new(t), Nat(0))),
        );
        map_hom_mk(&out, &|p: &NatPoly| val.eval(p)).len()
    };
    assert_eq!(del(&["p3", "r2"]), 2);
    assert_eq!(del(&["p3", "r2", "r1"]), 1);
    assert_eq!(del(&["p1", "p2", "p3"]), 1);
}

#[test]
fn example_3_4_sum_and_valuations() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (sal NUM);
         INSERT INTO r VALUES (20) PROVENANCE r1;
         INSERT INTO r VALUES (10) PROVENANCE r2;
         INSERT INTO r VALUES (30) PROVENANCE r3;",
    )
    .unwrap();
    let out = db.query("SELECT SUM(sal) AS total FROM r").unwrap();
    let (t, k) = out.iter().next().unwrap();
    assert!(k.is_one(), "AGG output is annotated 1_K (§3.2)");
    assert_eq!(t.get(0).to_string(), "SUM⟨(r2)⊗10 + (r1)⊗20 + (r3)⊗30⟩");

    // r1 ↦ 1, r2 ↦ 0, r3 ↦ 2 gives 1·20 + 2·30 = 80.
    let val = Valuation::<Nat>::ones()
        .set("r1", Nat(1))
        .set("r2", Nat(0))
        .set("r3", Nat(2));
    let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| val.eval(p))).unwrap();
    assert_eq!(resolved.iter().next().unwrap().0.get(0), &Value::int(80));

    // Deletion of the first tuple (r1 ↦ 0, others 1): 10 + 30 = 40…
    let val = Valuation::<Nat>::ones().set("r1", Nat(0));
    let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| val.eval(p))).unwrap();
    assert_eq!(resolved.iter().next().unwrap().0.get(0), &Value::int(40));
}

#[test]
fn example_3_5_security_views() {
    // MAX over S⊗20 + 1s⊗10 + S⊗30.
    let mut db: Database<Km<Security>> = Database::new();
    db.exec(
        "CREATE TABLE r (sal NUM);
         INSERT INTO r VALUES (20) PROVENANCE S;
         INSERT INTO r VALUES (10) PROVENANCE PUBLIC;
         INSERT INTO r VALUES (30) PROVENANCE S;",
    )
    .unwrap();
    let out = db.query("SELECT MAX(sal) AS top FROM r").unwrap();
    let view = |cred: Security| {
        let v = map_hom_mk(&out, &|s: &Security| {
            if s.visible_to(cred) {
                Security::Public
            } else {
                Security::Never
            }
        });
        let value = v.iter().next().unwrap().0.get(0).clone();
        value
    };
    // Credentials C see only the public tuple (10); S and T see 30.
    assert_eq!(view(Security::Confidential), Value::int(10));
    assert_eq!(view(Security::Secret), Value::int(30));
    assert_eq!(view(Security::TopSecret), Value::int(30));
}

#[test]
fn example_3_8_group_by_with_delta() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE r1;
         INSERT INTO r VALUES ('d1', 10) PROVENANCE r2;
         INSERT INTO r VALUES ('d2', 10) PROVENANCE r3;",
    )
    .unwrap();
    let out = db
        .query("SELECT dept, SUM(sal) AS sal FROM r GROUP BY dept")
        .unwrap();
    let rows: Vec<String> = out.iter().map(|(t, k)| format!("{t} @ {k}")).collect();
    assert_eq!(
        rows,
        vec![
            "('d1', SUM⟨(r2)⊗10 + (r1)⊗20⟩) @ δ(r1 + r2)",
            "('d2', SUM⟨(r3)⊗10⟩) @ δ(r3)",
        ]
    );
    // "if we map r1, r2 to e.g. 2 and 1 respectively, we obtain δ(3) = 1".
    let val = Valuation::<Nat>::ones().set("r1", Nat(2)).set("r2", Nat(1));
    let resolved = collapse(&map_hom_mk(&out, &|p: &NatPoly| val.eval(p))).unwrap();
    let d1 = resolved
        .iter()
        .find(|(t, _)| t.get(0) == &Value::str("d1"))
        .unwrap();
    assert_eq!(d1.1, &Nat(1));
    assert_eq!(d1.0.get(1), &Value::int(50));
}

#[test]
fn examples_4_1_4_3_4_5_nested_aggregation() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE r1;
         INSERT INTO r VALUES ('d1', 10) PROVENANCE r2;
         INSERT INTO r VALUES ('d2', 10) PROVENANCE r3;",
    )
    .unwrap();
    // Example 4.3: select groups whose summed salary equals 20.
    let selected = db
        .query("SELECT dept, SUM(sal) AS sal FROM r GROUP BY dept HAVING sal = 20")
        .unwrap();
    assert_eq!(selected.len(), 2, "both kept with symbolic tokens");

    let resolve = |r1: u64, r2: u64, r3: u64| {
        let val = Valuation::<Nat>::ones()
            .set("r1", Nat(r1))
            .set("r2", Nat(r2))
            .set("r3", Nat(r3));
        collapse(&map_hom_mk(&selected, &|p: &NatPoly| val.eval(p))).unwrap()
    };
    // r1=1, r2=0: d1's sum is 20 → kept. r1=r2=1: 30 → dropped
    // (the non-monotonicity of Example 4.1).
    assert_eq!(resolve(1, 0, 1).len(), 1);
    assert_eq!(resolve(1, 1, 1).len(), 0);
    // r3 = 2: d2 sums to 20 → kept.
    let out = resolve(0, 0, 2);
    assert_eq!(out.len(), 1);
    assert_eq!(out.iter().next().unwrap().0.get(0), &Value::str("d2"));

    // Example 4.5: a further SUM over the selected relation, written as a
    // FROM-subquery.
    let total = db
        .query(
            "SELECT SUM(s) AS total FROM \
             (SELECT dept, SUM(sal) AS s FROM r GROUP BY dept HAVING s = 20) g",
        )
        .unwrap();
    // h(r1)=1, h(r2)=0, h(r3)=2: d1 contributes 20, d2 contributes 20 → 40.
    let val = Valuation::<Nat>::ones()
        .set("r1", Nat(1))
        .set("r2", Nat(0))
        .set("r3", Nat(2));
    let resolved = collapse(&map_hom_mk(&total, &|p: &NatPoly| val.eval(p))).unwrap();
    assert_eq!(resolved.iter().next().unwrap().0.get(0), &Value::int(40));
    // Non-monotone: r2 ↦ 1 flips d1 out: only d2's 20 remains.
    let val = Valuation::<Nat>::ones()
        .set("r1", Nat(1))
        .set("r2", Nat(1))
        .set("r3", Nat(2));
    let resolved = collapse(&map_hom_mk(&total, &|p: &NatPoly| val.eval(p))).unwrap();
    assert_eq!(resolved.iter().next().unwrap().0.get(0), &Value::int(20));
}

#[test]
fn example_5_3_difference_via_except() {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (id NUM, dep TEXT);
         INSERT INTO r VALUES (1, 'd1') PROVENANCE t1;
         INSERT INTO r VALUES (2, 'd1') PROVENANCE t2;
         INSERT INTO r VALUES (2, 'd2') PROVENANCE t3;
         CREATE TABLE s (dep TEXT);
         INSERT INTO s VALUES ('d1') PROVENANCE t4;",
    )
    .unwrap();
    let out = db
        .query("SELECT dep FROM r EXCEPT SELECT dep FROM s")
        .unwrap();
    assert_eq!(out.len(), 2);
    let d2 = out.annotation(&Tuple::from([Value::str("d2")]));
    assert_eq!(d2.try_collapse(), Some(NatPoly::token("t3")));

    // Revoking the closure (t4 ↦ 0) revives d1 with t1 + t2.
    let val = Valuation::<NatPoly>::with_default(NatPoly::zero())
        .set("t1", NatPoly::token("t1"))
        .set("t2", NatPoly::token("t2"))
        .set("t3", NatPoly::token("t3"))
        .set("t4", NatPoly::zero());
    let revived = map_hom_mk(&out, &|p: &NatPoly| val.eval(p));
    assert_eq!(
        revived
            .annotation(&Tuple::from([Value::str("d1")]))
            .try_collapse()
            .unwrap()
            .to_string(),
        "t1 + t2"
    );

    // Example 5.6: all tokens ↦ 1 — ours deletes d1 entirely, bag monus
    // would keep it with multiplicity 1.
    let ours = collapse(&map_hom_mk(&out, &|p: &NatPoly| {
        Valuation::<Nat>::ones().eval(p)
    }))
    .unwrap();
    assert_eq!(ours.len(), 1);
}

#[test]
fn example_3_16_security_bag() {
    // SN ⊗ SUM: AGG(R ∪ Π_{S.A}(S ⋈ R)) with T, S, 1s annotations.
    let mut db: Database<Km<Sn>> = Database::new();
    db.exec(
        "CREATE TABLE r (a NUM);
         INSERT INTO r VALUES (30) PROVENANCE S;
         CREATE TABLE s (a NUM);
         INSERT INTO s VALUES (30) PROVENANCE T;
         INSERT INTO s VALUES (10) PROVENANCE PUBLIC;",
    )
    .unwrap();
    use aggprov::algebra::monoid::MonoidKind;
    use aggprov::core::ops::{agg, product, project, union, AggSpec};
    let r = db.table("r").unwrap().clone();
    let s = db.table("s").unwrap().clone();
    // Π_{S.A}(S ⋈ R): the paper's S.A and R.A are distinct attributes, so
    // the join is a product; projecting back to S's values multiplies each
    // S annotation by R's.
    let joined = {
        let s2 = s.rename("a", "b").unwrap();
        let j = product(&s2, &r).unwrap();
        project(&j, &["b"]).unwrap().rename("b", "a").unwrap()
    };
    let unioned = union(&r, &joined).unwrap();
    let total = agg(&unioned, AggSpec::new(MonoidKind::Sum, "a")).unwrap();
    let (t, _) = total.iter().next().unwrap();
    // Expected: (T·S + S)⊗30 + S⊗10 — counts {t:1, s:1} on 30 and {s:1}
    // on 10 (T·S = T in SN).
    let shown = t.get(0).to_string();
    assert_eq!(shown, "SUM⟨(S)⊗10 + (S + T)⊗30⟩");

    // The paper: credentials T see 70, credentials S see 40.
    let view = |cred: Security| {
        let v = map_hom_mk(&total, &|x: &Sn| Nat(x.multiplicity_for(cred)));
        collapse(&v)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .0
            .get(0)
            .clone()
    };
    assert_eq!(view(Security::TopSecret), Value::int(70));
    assert_eq!(view(Security::Secret), Value::int(40));
    assert_eq!(view(Security::Confidential), Value::int(0));
}
