//! The prepared-statement API end to end: plan reuse with different `$n`
//! parameters, fluent `ResultSet` interrogation equivalent to the
//! free-function `map_hom_mk` + `collapse` path, and the error surface.

use aggprov::core::eval::{collapse, map_hom_mk, specialize};
use aggprov::prelude::*;
use aggprov_algebra::poly::NatPoly;
use aggprov_algebra::semiring::{Nat, Security};

fn figure_1_db() -> ProvDb {
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE r (emp NUM, dept TEXT, sal NUM);
         INSERT INTO r VALUES (1, 'd1', 20) PROVENANCE p1;
         INSERT INTO r VALUES (2, 'd1', 10) PROVENANCE p2;
         INSERT INTO r VALUES (3, 'd1', 15) PROVENANCE p3;
         INSERT INTO r VALUES (4, 'd2', 10) PROVENANCE r1;
         INSERT INTO r VALUES (5, 'd2', 15) PROVENANCE r2;",
    )
    .unwrap();
    db
}

// ------------------------------------------------------------ reuse

#[test]
fn prepared_statement_reuses_the_plan_across_parameters() {
    let db = figure_1_db();
    let by_dept = db
        .prepare("SELECT emp, sal FROM r WHERE dept = $1")
        .unwrap();
    assert_eq!(by_dept.param_count(), 1);
    assert_eq!(by_dept.schema().to_string(), "emp, sal");

    let d1 = by_dept.execute_with(&[Const::str("d1")]).unwrap();
    let d2 = by_dept.execute_with(&[Const::str("d2")]).unwrap();
    assert_eq!(d1.len(), 3);
    assert_eq!(d2.len(), 2);

    // Executing twice with the same parameters is deterministic and does
    // not consume the statement.
    let d1_again = by_dept.execute_with(&[Const::str("d1")]).unwrap();
    assert_eq!(d1.relation(), d1_again.relation());
    // The plan is the same object across executions — nothing was
    // re-parsed or re-lowered.
    assert!(std::ptr::eq(by_dept.plan(), by_dept.plan()));
}

#[test]
fn parameters_work_in_having_and_with_numbers() {
    let db = figure_1_db();
    let stmt = db
        .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total = $1")
        .unwrap();
    // Both groups stay symbolic; under the all-ones valuation only the
    // group matching the bound constant survives.
    let survivors = |total: i64| {
        stmt.execute_with(&[Const::int(total)])
            .unwrap()
            .valuate(&Valuation::<Nat>::ones())
            .collapse()
            .unwrap()
            .len()
    };
    assert_eq!(survivors(45), 1, "d1 sums to 45");
    assert_eq!(survivors(25), 1, "d2 sums to 25");
    assert_eq!(survivors(99), 0);
}

#[test]
fn query_is_a_thin_wrapper_over_prepare_execute() {
    let db = figure_1_db();
    let sql = "SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept";
    let via_query = db.query(sql).unwrap();
    let via_prepare = db.prepare(sql).unwrap().execute().unwrap().into_relation();
    assert_eq!(via_query, via_prepare);
}

#[test]
fn prepared_statements_cover_joins_subqueries_and_set_ops() {
    let mut db = figure_1_db();
    db.exec(
        "CREATE TABLE heads (dept TEXT, head TEXT);
         INSERT INTO heads VALUES ('d1', 'alice') PROVENANCE h1;
         INSERT INTO heads VALUES ('d2', 'bob') PROVENANCE h2;",
    )
    .unwrap();

    let joined = db
        .prepare(
            "SELECT r.emp, heads.head FROM r JOIN heads ON r.dept = heads.dept \
             WHERE r.sal >= $1",
        )
        .unwrap();
    assert_eq!(joined.execute_with(&[Const::int(15)]).unwrap().len(), 3);
    assert_eq!(joined.execute_with(&[Const::int(20)]).unwrap().len(), 1);

    let nested = db
        .prepare(
            "SELECT SUM(s) AS total FROM \
             (SELECT dept, SUM(sal) AS s FROM r GROUP BY dept HAVING s = $1) g",
        )
        .unwrap();
    let out = nested.execute_with(&[Const::int(25)]).unwrap();
    let resolved = out.valuate(&Valuation::<Nat>::ones()).collapse().unwrap();
    assert_eq!(
        resolved.first().unwrap().get("total").unwrap(),
        &Value::int(25)
    );

    let setop = db
        .prepare("SELECT dept FROM r EXCEPT SELECT dept FROM heads WHERE head = $1")
        .unwrap();
    let out = setop.execute_with(&[Const::str("alice")]).unwrap();
    let resolved = out.valuate(&Valuation::<Nat>::ones()).collapse().unwrap();
    assert_eq!(resolved.len(), 1, "d1 closed by alice, d2 survives");
}

// ------------------------------------------- fluent ResultSet equivalence

#[test]
fn valuate_collapse_matches_the_free_function_path() {
    let db = figure_1_db();
    let out = db
        .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept HAVING total > 25")
        .unwrap()
        .execute()
        .unwrap();

    for val in [
        Valuation::<Nat>::ones(),
        Valuation::<Nat>::ones().set("p1", Nat(0)),
        Valuation::<Nat>::ones().set("p1", Nat(2)).set("r2", Nat(3)),
        Valuation::<Nat>::deleting(["p1", "p2", "p3"]),
    ] {
        let fluent = out.valuate(&val).collapse().unwrap();
        let free = collapse(&map_hom_mk(out.relation(), &|p: &NatPoly| val.eval(p))).unwrap();
        assert_eq!(fluent.relation(), &free);
        // …and both agree with core's `specialize`.
        let via_specialize = collapse(&specialize(out.relation(), &val)).unwrap();
        assert_eq!(fluent.relation(), &via_specialize);
    }
}

#[test]
fn delete_tokens_is_deletion_propagation() {
    let db = figure_1_db();
    let out = db
        .prepare("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept")
        .unwrap()
        .execute()
        .unwrap();

    // Fluent deletion propagation…
    let deleted = out.delete_tokens(["r1", "r2"]);
    // …equals the free-function substitution sending the deleted tokens to
    // zero and keeping every other token symbolic.
    let free = map_hom_mk(out.relation(), &|p: &NatPoly| {
        p.eval(
            &mut |v| {
                if v.name() == "r1" || v.name() == "r2" {
                    NatPoly::zero()
                } else {
                    NatPoly::token(v.name())
                }
            },
            &mut |c| NatPoly::from_nat(c.0),
        )
    });
    assert_eq!(deleted.relation(), &free);
    assert_eq!(deleted.len(), 1, "d2's group is gone");
    // The survivors' provenance is still symbolic, token for token.
    assert!(deleted
        .first()
        .unwrap()
        .annotation()
        .to_string()
        .contains("p1"));

    // Deletion stays symbolic: further interrogation still works.
    let plain = deleted
        .valuate(&Valuation::<Nat>::ones())
        .collapse()
        .unwrap();
    assert_eq!(plain.first().unwrap().get("mass").unwrap(), &Value::int(45));
}

#[test]
fn clearance_matches_the_manual_security_view() {
    let mut db: Database<Km<Security>> = Database::new();
    db.exec(
        "CREATE TABLE r (sal NUM);
         INSERT INTO r VALUES (20) PROVENANCE S;
         INSERT INTO r VALUES (10) PROVENANCE PUBLIC;
         INSERT INTO r VALUES (30) PROVENANCE S;",
    )
    .unwrap();
    let out = db
        .prepare("SELECT MAX(sal) AS top FROM r")
        .unwrap()
        .execute()
        .unwrap();

    // Example 3.5: the aggregate stays symbolic until credentials arrive.
    assert!(out.first().unwrap().get("top").unwrap().is_agg());

    for cred in [
        Security::Confidential,
        Security::Secret,
        Security::TopSecret,
    ] {
        let fluent = out.clearance(cred);
        let manual = map_hom_mk(out.relation(), &|s: &Security| {
            if s.visible_to(cred) {
                Security::Public
            } else {
                Security::Never
            }
        });
        assert_eq!(fluent.relation(), &manual);
    }
    assert_eq!(
        out.clearance(Security::Secret).first().unwrap().at(0),
        &Value::int(30)
    );
    assert_eq!(
        out.clearance(Security::Confidential).first().unwrap().at(0),
        &Value::int(10)
    );
}

#[test]
fn rows_give_by_name_access() {
    let db = figure_1_db();
    let out = db
        .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept")
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(out.columns(), vec!["dept", "total"]);
    assert_eq!(out.column_index("total").unwrap(), 1);

    let mut depts = Vec::new();
    for row in out.rows() {
        depts.push(row.get("dept").unwrap().to_string());
        assert!(row.get("total").unwrap().is_agg());
        assert!(row.get("nope").is_err());
        assert!(!row.annotation().is_zero());
    }
    assert_eq!(depts, vec!["'d1'", "'d2'"]);

    // scalar() reads 1×1 aggregates directly.
    let total = db
        .prepare("SELECT COUNT(*) AS n FROM r")
        .unwrap()
        .execute()
        .unwrap();
    assert!(total.scalar().is_ok());
    assert!(out.scalar().is_err(), "2×2 result has no scalar");
}

// ----------------------------------------------------------- error cases

#[test]
fn unknown_parameters_are_rejected() {
    let db = figure_1_db();

    // Two placeholders referenced but only one value supplied.
    let stmt = db
        .prepare("SELECT emp FROM r WHERE sal = $1 AND dept = $2")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);
    let err = stmt.execute_with(&[Const::int(10)]).unwrap_err();
    assert!(err.to_string().contains("exactly 2 parameter"), "{err}");

    // Executing a parameterized query with no parameters at all.
    let err = stmt.execute().unwrap_err();
    assert!(err.to_string().contains("`$n`"), "{err}");

    // Supplying more parameters than the query uses is also an error.
    let stmt = db.prepare("SELECT emp FROM r WHERE sal = $1").unwrap();
    let err = stmt
        .execute_with(&[Const::int(10), Const::int(20)])
        .unwrap_err();
    assert!(err.to_string().contains("exactly 1 parameter"), "{err}");

    // Gaps in the numbering are rejected at prepare time: a query that
    // says $2 but never $1 has miscounted, and accepting it would
    // silently drop a bound value.
    let err = db.prepare("SELECT emp FROM r WHERE sal = $2").unwrap_err();
    assert!(err.to_string().contains("never $1"), "{err}");

    // $0 is a lex-time error; bare `$` too.
    assert!(db.prepare("SELECT emp FROM r WHERE sal = $0").is_err());
    assert!(db.prepare("SELECT emp FROM r WHERE sal = $").is_err());

    // Scripts cannot use parameters (no way to bind them).
    let mut db = figure_1_db();
    assert!(db.exec("SELECT emp FROM r WHERE sal = $1").is_err());
}

#[test]
fn param_arity_errors_are_a_dedicated_variant_on_both_paths() {
    use aggprov_krel::error::RelError;
    let db = figure_1_db();
    let stmt = db.prepare("SELECT emp FROM r WHERE sal = $1").unwrap();

    // The up-front arity check raises the dedicated variant…
    let err = stmt.execute_with(&[]).unwrap_err();
    assert_eq!(
        err,
        RelError::ParamArity {
            expected: 1,
            got: 0
        }
    );
    // …with the precise human-readable rendering.
    assert_eq!(
        err.to_string(),
        "query expects exactly 1 parameter (`$n`), got 0"
    );
    let err = stmt
        .execute_with(&[Const::int(1), Const::int(2)])
        .unwrap_err();
    assert_eq!(
        err,
        RelError::ParamArity {
            expected: 1,
            got: 2
        }
    );
    assert!(!matches!(err, RelError::Unsupported(_)));
}

#[test]
fn parse_errors_are_a_dedicated_variant_with_positions() {
    use aggprov_krel::error::RelError;
    let db = figure_1_db();

    // A parser error carries the byte offset of the offending token
    // (`FRM` starts at byte 11) in a dedicated variant…
    let err = db.prepare("SELECT emp FRM r").unwrap_err();
    let RelError::Parse { pos, msg } = &err else {
        panic!("expected RelError::Parse, got {err:?}");
    };
    assert_eq!(*pos, 11);
    assert!(msg.contains("expected `FROM`"), "{msg}");
    // …with the familiar `parse error:` rendering kept compatible.
    assert!(err.to_string().starts_with("parse error:"), "{err}");
    assert!(err.to_string().contains("at byte 11"), "{err}");
    assert!(!matches!(err, RelError::Unsupported(_)));

    // Lexer errors are the same variant (position of the bad character).
    let err = db.prepare("SELECT emp FROM r WHERE sal = $0").unwrap_err();
    assert!(matches!(err, RelError::Parse { pos: 30, .. }), "{err:?}");

    // Name-resolution failures are *not* parse errors: the taxonomy
    // separates "bad text" from "unknown name".
    let err = db.prepare("SELECT nope FROM r").unwrap_err();
    assert!(!matches!(err, RelError::Parse { .. }), "{err:?}");
}

#[test]
fn ungrouped_avg_over_empty_input_returns_no_rows() {
    let mut db = ProvDb::new();
    db.exec("CREATE TABLE t (x NUM);").unwrap();

    // SQL answers NULL for AVG over an empty table; with no NULLs in the
    // engine, the identity row is dropped and the result is empty (it
    // used to error with `Unsupported("AVG over an empty group")`).
    let out = db
        .prepare("SELECT AVG(x) FROM t")
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(out.len(), 0);

    // Grouped AVG over an empty table has no groups, hence no rows either.
    db.exec("CREATE TABLE u (g TEXT, x NUM);").unwrap();
    let out = db
        .prepare("SELECT g, AVG(x) FROM u GROUP BY g")
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(out.len(), 0);

    // Non-empty input still averages; SUM/COUNT still return their
    // identities on empty input (0 and 0) — only AVG's row is dropped.
    db.exec("INSERT INTO t VALUES (10); INSERT INTO t VALUES (20);")
        .unwrap();
    let avg = db.query("SELECT AVG(x) AS a FROM t").unwrap();
    let row = avg.iter().next().unwrap().0;
    assert_eq!(row.get(0).to_string(), "15");
    let empty_sum = db
        .query("SELECT SUM(x) AS s, COUNT(*) AS n FROM u")
        .unwrap();
    assert_eq!(empty_sum.len(), 1, "SUM/COUNT keep the §3.2 identity row");
}

#[test]
fn identity_projection_over_symbolic_rows_keeps_cross_tokens() {
    // `SELECT x FROM (…) q` selects every column in order — but over rows
    // that mix constants and symbolic aggregates it must still apply the
    // §4.3 projection (a constant row and an aggregate row carry a
    // nonzero equality token); only symbol-free inputs may take the
    // schema-rename shortcut.
    let mut db = ProvDb::new();
    db.exec(
        "CREATE TABLE t (x NUM);
         INSERT INTO t VALUES (20) PROVENANCE p1;
         CREATE TABLE u (y NUM);
         INSERT INTO u VALUES (10) PROVENANCE q1;
         INSERT INTO u VALUES (10) PROVENANCE q2;",
    )
    .unwrap();
    let inner_sql = "SELECT x FROM t UNION SELECT SUM(y) AS x FROM u";
    let inner = db.query(inner_sql).unwrap();
    let expected = aggprov::core::ops::project(&inner, &["x"]).unwrap();
    let outer = db.query(&format!("SELECT x FROM ({inner_sql}) q")).unwrap();
    assert_eq!(outer, expected);
    // The constant row's annotation must include the cross contribution
    // of the symbolic SUM row, guarded by an equality token.
    let (_, k) = outer
        .iter()
        .find(|(t, _)| !t.get(0).is_agg())
        .expect("constant row");
    assert!(k.to_string().contains("=SUM="), "cross token kept: {k}");
}

#[test]
fn scans_share_base_table_storage_across_executions() {
    let db = figure_1_db();
    let stmt = db.prepare("SELECT emp, dept, sal FROM r").unwrap();
    let a = stmt.execute().unwrap().into_relation();
    let b = stmt.execute().unwrap().into_relation();
    // `Plan::Scan` no longer deep-copies the base table: re-executions
    // share one Arc'd tuple store (schema-level renames only).
    assert!(a.shares_tuples_with(&b));
    assert!(a.shares_tuples_with(db.table("r").unwrap()));
}

#[test]
fn duplicated_select_items_project_positionally() {
    let db = figure_1_db();
    // The same column under two aliases is legal SQL; the symbolic
    // projection runs once over the distinct columns and the output is
    // expanded positionally.
    let out = db
        .prepare("SELECT dept AS a, dept AS b, sal FROM r WHERE emp = 1")
        .unwrap()
        .execute()
        .unwrap();
    assert_eq!(out.columns(), vec!["a", "b", "sal"]);
    let row = out.first().unwrap();
    assert_eq!(row.get("a").unwrap(), row.get("b").unwrap());
    assert_eq!(row.get("a").unwrap(), &Value::str("d1"));

    // Projection semantics (annotation merging) agree with the
    // single-copy projection.
    let doubled = db.prepare("SELECT dept AS a, dept AS b FROM r").unwrap();
    let single = db.query("SELECT dept FROM r").unwrap();
    let out = doubled.execute().unwrap();
    assert_eq!(out.len(), single.len());
    for (t, k) in out.iter() {
        assert_eq!(t.get(0), t.get(1));
        let single_tuple = aggprov_krel::relation::Tuple::from([t.get(0).clone()]);
        assert_eq!(&single.annotation(&single_tuple), k);
    }
}

#[test]
fn preparation_resolves_and_validates_names_eagerly() {
    let db = figure_1_db();
    // All of these fail at prepare() time — before any execution.
    assert!(db.prepare("SELECT nope FROM r").is_err());
    assert!(db.prepare("SELECT emp FROM missing").is_err());
    assert!(db.prepare("SELECT emp, SUM(sal) FROM r").is_err());
    assert!(db.prepare("SELECT emp FROM r HAVING emp = 1").is_err());
    assert!(db
        .prepare("SELECT emp FROM r UNION SELECT emp, sal FROM r")
        .is_err());
}

#[test]
fn collapse_reports_surviving_symbolic_atoms() {
    let db = figure_1_db();
    let out = db
        .prepare("SELECT dept, SUM(sal) AS mass FROM r GROUP BY dept")
        .unwrap()
        .execute()
        .unwrap();
    // Without a valuation the δ-annotations are still symbolic.
    let err = out.collapse().unwrap_err();
    assert!(err.to_string().contains("symbolic"), "{err}");
}

// `ResultSet::valuate` on a bag database (`Database<Nat>`) is a *compile*
// error — there are no tokens to valuate. See the `compile_fail` doctest on
// `ResultSet::valuate`. The runtime analogue: a bag database's results
// collapse/aggregate eagerly, so the fluent provenance methods simply are
// not there, and plain access still works:
#[test]
fn bag_databases_expose_plain_results_only() {
    let mut db: Database<Nat> = Database::new();
    db.exec(
        "CREATE TABLE r (dept TEXT, sal NUM);
         INSERT INTO r VALUES ('d1', 20) PROVENANCE 2;
         INSERT INTO r VALUES ('d1', 10);",
    )
    .unwrap();
    let out = db
        .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept")
        .unwrap()
        .execute()
        .unwrap();
    // Bag semantics resolve on the spot: 2·20 + 10 = 50.
    assert_eq!(out.first().unwrap().get("total").unwrap(), &Value::int(50));
}

// ------------------------------------------------------------ parallelism

// The same prepared plan, executed serial and with 8 worker threads, must
// produce bit-identical ResultSets — including the symbolic HAVING tokens
// and the δ-annotations, which live on the sequential fringe.
#[test]
fn execute_with_opts_is_thread_count_invariant() {
    let db = figure_1_db();
    let prepared = db
        .prepare(
            "SELECT dept, SUM(sal) AS total FROM r GROUP BY dept \
             HAVING total = 25",
        )
        .unwrap();
    let serial = prepared
        .execute_with_opts(&[], &ExecOptions::serial())
        .unwrap();
    let parallel = prepared
        .execute_with_opts(&[], &ExecOptions::with_threads(8))
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 2, "both groups kept symbolically");

    // A join over the same table (renamed through subqueries) too.
    let join = db
        .prepare(
            "SELECT a.emp, b.emp2 FROM \
             (SELECT emp, dept FROM r) a JOIN \
             (SELECT emp AS emp2, dept AS dept2 FROM r) b \
             ON a.dept = b.dept2",
        )
        .unwrap();
    assert_eq!(
        join.execute_with_opts(&[], &ExecOptions::serial()).unwrap(),
        join.execute_with_opts(&[], &ExecOptions::with_threads(8))
            .unwrap()
    );
}

// Plan introspection: which nodes will shard across threads.
#[test]
fn plans_report_partition_parallel_nodes() {
    let db = figure_1_db();
    let scan = db.prepare("SELECT emp, dept, sal FROM r").unwrap();
    // The count is a static upper bound: an identity projection still
    // counts because whether it shards is decided by the data (over
    // symbol-free input it degrades to a pure schema rename; over
    // symbolic values it runs the sharded §4.3 merge).
    assert_eq!(scan.plan().partition_parallel_nodes(), 1);
    let grouped = db
        .prepare("SELECT dept, SUM(sal) AS total FROM r GROUP BY dept")
        .unwrap();
    // Aggregate + the outer projection.
    assert_eq!(grouped.plan().partition_parallel_nodes(), 2);
    let unioned = db
        .prepare("SELECT dept FROM r UNION SELECT dept FROM r")
        .unwrap();
    // Two projections + the union.
    assert_eq!(unioned.plan().partition_parallel_nodes(), 3);
}
