//! The deletion-propagation contract: `examples/deletion_propagation.rs`
//! demos one-shot deletion on a stored result (fire tokens, substitute,
//! re-collapse — no re-evaluation). Incremental view maintenance is the
//! *live* generalization of exactly that machinery, so the two must agree
//! bit for bit: a materialized view after [`ProvDb::delete_tokens`] is the
//! example's `ResultSet::delete_tokens` output, and both collapse to the
//! same plain relation as the example's `Valuation::deleting` route.

use aggprov::prelude::*;
use aggprov::workloads::org::{org_database, OrgParams};
use aggprov_algebra::semiring::Nat;
use aggprov_engine::MaintenanceStrategy;

const QUERY: &str = "SELECT dept, SUM(sal) AS mass FROM emp GROUP BY dept";

/// The example's parameters, scenario ("every 7th employee resigns"), and
/// query — verbatim.
fn example_setup() -> (aggprov_engine::ProvDb, Vec<String>) {
    let (db, workload) = org_database(OrgParams {
        departments: 30,
        employees_per_dept: 60,
        ..Default::default()
    });
    let fired: Vec<String> = workload.emp_tokens.iter().step_by(7).cloned().collect();
    (db, fired)
}

#[test]
fn incremental_maintenance_matches_one_shot_deletion() {
    let (mut db, fired) = example_setup();

    // The example's route: evaluate once, fire the tokens on the stored
    // result.
    let symbolic = db.prepare(QUERY).unwrap().execute().unwrap();
    let one_shot = symbolic.delete_tokens(fired.iter().map(|s| s.as_str()));

    // The maintenance route: materialize first, mutate the database.
    db.materialize("mass", QUERY).unwrap();
    assert_eq!(
        db.view_strategy("mass").unwrap(),
        MaintenanceStrategy::Incremental
    );
    db.delete_tokens(fired.iter().map(|s| s.as_str())).unwrap();

    // Bit-identical at the provenance level: same rows, same symbolic
    // aggregate values, same annotation polynomials.
    assert_eq!(db.view("mass").unwrap(), one_shot.relation());
}

#[test]
fn maintained_view_collapses_like_the_examples_valuation_route() {
    let (mut db, fired) = example_setup();

    // Route 1 of the example: specialize the stored provenance under the
    // deleting valuation and collapse to plain bag semantics.
    let symbolic = db.prepare(QUERY).unwrap().execute().unwrap();
    let val: Valuation<Nat> = Valuation::deleting(fired.iter().map(|s| s.as_str()));
    let via_provenance = symbolic.valuate(&val).collapse().unwrap();

    // The maintained view after the same deletions, read at face value.
    db.materialize("mass", QUERY).unwrap();
    db.delete_tokens(fired.iter().map(|s| s.as_str())).unwrap();
    let via_view = ResultSet::from_relation(db.view("mass").unwrap().clone())
        .valuate(&Valuation::<Nat>::ones())
        .collapse()
        .unwrap();

    assert_eq!(via_provenance.relation(), via_view.relation());
}
