//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal timing harness exposing the subset of the criterion 0.5 API its
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark runs `sample_size` timed iterations (after one warm-up)
//! and prints mean wall-clock time per iteration. There is no statistical
//! analysis, outlier rejection, or HTML report — the point is that
//! `cargo bench` builds and produces comparable numbers offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The effective sample count: `AGGPROV_BENCH_SAMPLES`, when set, caps the
/// configured sample size — CI runs the benches in quick mode with
/// `AGGPROV_BENCH_SAMPLES=2` (the stand-in for criterion's `--quick`).
///
/// A set-but-unparseable value is a loud panic naming the variable and the
/// bad value: `AGGPROV_BENCH_SAMPLES=fast` must not silently run the full
/// sample count (or, worse, make CI quietly stop being quick).
pub fn quick_mode_samples(configured: usize) -> usize {
    const VAR: &str = "AGGPROV_BENCH_SAMPLES";
    match std::env::var(VAR) {
        Err(std::env::VarError::NotPresent) => configured.max(1),
        Err(std::env::VarError::NotUnicode(raw)) => {
            panic!("{VAR} must be a positive integer, got non-unicode `{raw:?}`")
        }
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n.min(configured).max(1),
            _ => panic!("{VAR} must be a positive integer, got `{s}`"),
        },
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh driver (mirrors `Criterion::default()`).
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), |b| f(b))
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input))
    }

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = quick_mode_samples(self.sample_size);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total
            .checked_div(bencher.samples.len().max(1) as u32)
            .unwrap_or_default();
        println!(
            "{label:<40} {mean:>12.2?}/iter ({} samples)",
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark's timing handle.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times the routine `sample_size` times (after one warm-up run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// An identifier of a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; there is
            // nothing to test here, so exit quickly in that mode.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::quick_mode_samples;

    /// The only test in this binary that touches `AGGPROV_BENCH_SAMPLES`
    /// (env vars are process-global); it restores the prior value so a CI
    /// quick-mode env survives.
    #[test]
    fn quick_mode_samples_caps_and_rejects_loudly() {
        const VAR: &str = "AGGPROV_BENCH_SAMPLES";
        let saved = std::env::var(VAR).ok();
        std::env::remove_var(VAR);
        assert_eq!(quick_mode_samples(5), 5, "unset: configured wins");
        assert_eq!(quick_mode_samples(0), 1, "never zero samples");
        std::env::set_var(VAR, "2");
        assert_eq!(quick_mode_samples(5), 2, "env caps");
        assert_eq!(quick_mode_samples(1), 1, "cap never raises");
        for bad in ["", "0", "quick", "-3"] {
            std::env::set_var(VAR, bad);
            let err = std::panic::catch_unwind(|| quick_mode_samples(5)).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains(VAR) && msg.contains(&format!("`{bad}`")),
                "loud panic names variable and value: {msg}"
            );
        }
        match saved {
            Some(v) => std::env::set_var(VAR, v),
            None => std::env::remove_var(VAR),
        }
    }
}
