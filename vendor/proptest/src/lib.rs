//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic property-testing harness exposing the subset of
//! the proptest 1.x API its test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`], [`Just`],
//! `any::<T>()`, integer-range and simple regex string strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::bool::ANY`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs its body over `cases` deterministically generated inputs
//! (seeded per test name), and assertion macros panic directly. That keeps
//! the law suites meaningful — broad randomized coverage, reproducible
//! failures — without any dependencies.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random source for strategy sampling.
pub mod test_runner {
    /// Configuration for a property test (only `cases` is modelled).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// `PROPTEST_CASES`, mirroring real proptest's env override: when set,
    /// it replaces both the default case count and explicit `with_cases`
    /// configuration (so a scheduled deep run — `PROPTEST_CASES=1024` —
    /// scales every suite in the workspace). A set-but-unparseable value
    /// panics, naming the variable and the bad value.
    fn env_cases() -> Option<u32> {
        const VAR: &str = "PROPTEST_CASES";
        match std::env::var(VAR) {
            Err(std::env::VarError::NotPresent) => None,
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!("{VAR} must be a positive integer, got non-unicode `{raw:?}`")
            }
            Ok(s) => match s.trim().parse::<u32>() {
                Ok(n) if n >= 1 => Some(n),
                _ => panic!("{VAR} must be a positive integer, got `{s}`"),
            },
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases (`PROPTEST_CASES`
        /// overrides, see [`env_cases`]).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(64)
        }
    }

    /// A deterministic RNG (SplitMix64), seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test identifier (FNV-1a hash).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

/// Strategies: deterministic samplers for arbitrary values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A sampler of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between type-erased strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (start as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
    tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i
    );
    tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j
    );
    tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j,
        K / k
    );
    tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j,
        K / k,
        L / l
    );

    /// A simple-regex string strategy: `&'static str` patterns of the form
    /// `ATOM{min,max}` where `ATOM` is `.` (printable ASCII) or a character
    /// class like `[a-z0-9_]`. This covers the patterns the workspace uses
    /// (`".{0,120}"`, `"[a-z]{1,6}"`, …); anything else panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_simple_regex(self)
                .unwrap_or_else(|| panic!("unsupported string strategy pattern `{self}`"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let (atom, rest) = if let Some(rest) = pattern.strip_prefix('.') {
            let printable: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
            (printable, rest)
        } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
            let end = body_and_rest.find(']')?;
            let body: Vec<char> = body_and_rest[..end].chars().collect();
            let mut chars = Vec::new();
            let mut i = 0;
            while i < body.len() {
                if i + 2 < body.len() && body[i + 1] == '-' {
                    let (lo, hi) = (body[i], body[i + 2]);
                    for c in lo..=hi {
                        chars.push(c);
                    }
                    i += 3;
                } else {
                    chars.push(body[i]);
                    i += 1;
                }
            }
            if chars.is_empty() {
                return None;
            }
            (chars, &body_and_rest[end + 1..])
        } else {
            return None;
        };
        if rest.is_empty() {
            return Some((atom, 1, 1));
        }
        let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match bounds.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = bounds.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((atom, lo, hi))
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform booleans (also `prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64);
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// An inclusive length range for collection strategies.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty length range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty length range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        /// A strategy for vectors whose length is drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `prop::collection::vec(element, min..max)`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.min + rng.below((self.len.max - self.len.min + 1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling from fixed collections.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A uniform choice from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(items)`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select over an empty list");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        /// A uniform boolean.
        pub const ANY: crate::arbitrary::AnyBool = crate::arbitrary::AnyBool;
    }
}

/// Everything a proptest suite needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests (see crate docs for the differences
/// from real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident ($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($args)*);
                $body
            }
        }
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Panicking assertion (no shrinking, unlike real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Panicking equality assertion (no shrinking, unlike real proptest).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in -5i64..5, b in 0u32..3, v in prop::collection::vec(0u8..10, 0..4)) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(b < 3);
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn strings_match_simple_patterns(s in "[a-z]{1,6}", t in ".{0,10}") {
            prop_assert!((1..=6).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.chars().count() <= 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_and_select(x in prop_oneof![Just(1i64), 10i64..20], k in prop::sample::select(vec!["a", "b"]),) {
            prop_assert!(x == 1 || (10..20).contains(&x));
            prop_assert!(k == "a" || k == "b");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut r1 = TestRng::for_test("t");
        let mut r2 = TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u64..100).generate(&mut r1), (0u64..100).generate(&mut r2));
        }
    }
}
