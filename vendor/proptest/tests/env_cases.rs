//! `PROPTEST_CASES` handling, isolated in its own test binary: the
//! variable is process-global and this test mutates it, so it must not
//! share a process with the proptest-macro tests (which read the variable
//! whenever a test body constructs its config).

use proptest::test_runner::ProptestConfig;

#[test]
fn proptest_cases_env_overrides_and_rejects_loudly() {
    const VAR: &str = "PROPTEST_CASES";
    let saved = std::env::var(VAR).ok();
    std::env::remove_var(VAR);
    assert_eq!(ProptestConfig::default().cases, 64);
    assert_eq!(ProptestConfig::with_cases(16).cases, 16);
    std::env::set_var(VAR, "1024");
    assert_eq!(
        ProptestConfig::default().cases,
        1024,
        "env overrides default"
    );
    assert_eq!(
        ProptestConfig::with_cases(16).cases,
        1024,
        "env overrides explicit configs too (a deep run scales every suite)"
    );
    for bad in ["", "0", "lots"] {
        std::env::set_var(VAR, bad);
        let err = std::panic::catch_unwind(ProptestConfig::default).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains(VAR) && msg.contains(&format!("`{bad}`")),
            "loud panic names variable and value: {msg}"
        );
    }
    match saved {
        Some(v) => std::env::set_var(VAR, v),
        None => std::env::remove_var(VAR),
    }
}
