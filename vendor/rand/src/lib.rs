//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of the subset of the rand 0.9 API
//! it uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer ranges, and [`Rng::random_bool`].
//!
//! The generator is SplitMix64 — statistically fine for synthetic-workload
//! generation, deterministic per seed, and dependency-free. It is NOT
//! cryptographically secure and makes no cross-version stream guarantees.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from an integer range (`0..10`, `1..=6`, …).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: SplitMix64 (deterministic per seed).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000i64), b.random_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-3..4i64);
            assert!((-3..4).contains(&x));
            let y = rng.random_range(10..=200i64);
            assert!((10..=200).contains(&y));
            let z = rng.random_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "{hits}");
    }
}
